package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LockOrder enforces a declared lock hierarchy on top of the `// guarded by`
// convention. Mutex fields (and package-level mutex variables) opt in with
//
//	//turbdb:lockrank <name> <level>
//
// on their declaration: <name> is the lock's hierarchy-wide label and <level>
// an integer rank. The rule is strict ordering: while any lock is held, only
// locks with a strictly greater level may be acquired. The analyzer builds a
// static lock-acquisition graph — which locks each function may take,
// propagated bottom-up through the module's call graph by the loader — and
// reports:
//
//   - rank inversions: an acquisition of a lock whose level is ≤ the level of
//     a lock already held, with the call path from the holder to the
//     acquisition;
//   - re-acquisition: taking a lock the function (or a callee) already
//     holds — self-deadlock, since sync.Mutex is not reentrant;
//   - cycles: a cycle in the acquisition graph among any mutexes (ranked or
//     not) — two code paths that take the same locks in opposite orders can
//     deadlock even if neither lock declares a rank.
//
// Like lockcheck, the analysis identifies a lock by its field (or variable)
// declaration, not by instance: locking a.mu of one instance and b.mu of
// another registers as the same lock. The "held" state is a per-function
// syntactic approximation in source order; control flow that releases a lock
// on one branch only is not modeled. Deliberate exceptions carry a
// //turbdb:ignore lockorder <reason> suppression.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "verify //turbdb:lockrank acquisition order and detect lock cycles",
	Run:  runLockOrder,
}

// lockrankRe parses the declaration directive. The operand group is
// permissive so a malformed directive can be reported instead of silently
// ignored.
var lockrankRe = regexp.MustCompile(`^turbdb:lockrank(?:\s+(.*))?$`)

// LockRank is one parsed //turbdb:lockrank declaration.
type LockRank struct {
	Name  string
	Level int
	Pos   token.Pos
}

// LockEdge records that To was (possibly transitively) acquired while From
// was held. Pkg is the import path of the package whose function body
// produced the edge; Path is the static call chain from the holding function
// to the acquiring one.
type LockEdge struct {
	From, To *types.Var
	Pos      token.Pos
	Pkg      string
	Path     []string
}

// LockGraph is the module-wide lock model, shared across every package one
// Loader loads (the same sharing pattern as Package.RowKernels). The loader
// populates it sequentially during Load — dependencies first, so callee
// summaries exist before their importers are walked — and analyzers only
// read it, keeping parallel per-package analysis race-free.
type LockGraph struct {
	// Ranks maps mutex variables to their declared hierarchy rank.
	Ranks map[*types.Var]LockRank
	// Names maps every mutex variable seen at a declaration to a display
	// name ("Struct.field" or "pkg.var") for diagnostics.
	Names map[*types.Var]string
	// Acquires maps each function to the locks it may take, directly or
	// through static callees, with a sample call path per lock.
	Acquires map[types.Object]map[*types.Var][]string
	// Edges is the deduplicated held→acquired relation.
	Edges    []LockEdge
	edgeSeen map[[2]*types.Var]map[string]bool
	opsCache map[*ast.FuncDecl][]lockOp
}

// NewLockGraph creates an empty graph.
func NewLockGraph() *LockGraph {
	return &LockGraph{
		Ranks:    make(map[*types.Var]LockRank),
		Names:    make(map[*types.Var]string),
		Acquires: make(map[types.Object]map[*types.Var][]string),
		edgeSeen: make(map[[2]*types.Var]map[string]bool),
		opsCache: make(map[*ast.FuncDecl][]lockOp),
	}
}

// lockName returns the diagnostic label of a mutex variable: its hierarchy
// name when ranked, its declared display name otherwise.
func (g *LockGraph) lockName(v *types.Var) string {
	if r, ok := g.Ranks[v]; ok {
		return r.Name
	}
	if n, ok := g.Names[v]; ok {
		return n
	}
	return v.Name()
}

// lockrankDirective extracts the raw operand text of a lockrank directive
// from a comment group, with found=false when no directive is present.
func lockrankDirective(cgs ...*ast.CommentGroup) (operands string, pos token.Pos, found bool) {
	for _, cg := range cgs {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if m := lockrankRe.FindStringSubmatch(text); m != nil {
				return strings.TrimSpace(m[1]), c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// parseLockRank validates directive operands: exactly "<name> <level>" with
// an integer level.
func parseLockRank(operands string, pos token.Pos) (LockRank, error) {
	parts := strings.Fields(operands)
	if len(parts) != 2 {
		return LockRank{}, fmt.Errorf("//turbdb:lockrank wants `<name> <level>`, got %q", operands)
	}
	level, err := strconv.Atoi(parts[1])
	if err != nil {
		return LockRank{}, fmt.Errorf("//turbdb:lockrank level %q is not an integer", parts[1])
	}
	return LockRank{Name: parts[0], Level: level, Pos: pos}, nil
}

// forEachMutexDecl visits every mutex-typed struct field and package-level
// variable declaration of the package, handing the visitor the variable, a
// display name, and the field/spec comment groups carrying its directives.
func forEachMutexDecl(pkg *Package, visit func(v *types.Var, display string, isMutex bool, doc, comment *ast.CommentGroup)) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				st, ok := n.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						v, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						visit(v, n.Name.Name+"."+name.Name, isMutexType(v.Type()), f.Doc, f.Comment)
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					doc := vs.Doc
					if doc == nil && len(n.Specs) == 1 {
						doc = n.Doc
					}
					for _, name := range vs.Names {
						v, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok || v.IsField() {
							continue
						}
						// package-level variables only; locals have no docs
						if pkg.Types != nil && v.Parent() != pkg.Types.Scope() {
							continue
						}
						visit(v, pkg.Types.Name()+"."+name.Name, isMutexType(v.Type()), doc, vs.Comment)
					}
				}
			}
			return true
		})
	}
}

// lockOp is one ordered event of a function body: a direct acquisition or
// release of a mutex, or a call to a statically resolved function.
type lockOp struct {
	pos     token.Pos
	mu      *types.Var  // acquire/release
	fn      *types.Func // call
	release bool
}

// acquireMethods / releaseMethods split the lockcheck evidence set into the
// two directions lockorder needs.
var acquireMethods = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
var releaseMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// mutexVarOf resolves an expression (s.mu, pkgvar) to the mutex variable it
// denotes, or nil.
func mutexVarOf(pkg *Package, x ast.Expr) *types.Var {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && isMutexType(v.Type()) {
			return v
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok && isMutexType(v.Type()) {
			return v
		}
	}
	return nil
}

// staticCallee resolves a call to its *types.Func via the package's type
// info (nil for dynamic calls, conversions and builtins).
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// collectLockOps walks a body in source order and returns its lock events.
// Function literals invoked or deferred in place run on the creator's lock
// state and are walked inline; literals launched with `go` (or merely
// stored) run concurrently or later and are collected into spawned for an
// independent walk with an empty held set. Deferred Unlock calls are
// dropped: the lock stays held to the end of the function.
func collectLockOps(pkg *Package, body ast.Node, spawned *[]*ast.FuncLit) []lockOp {
	var ops []lockOp
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				*spawned = append(*spawned, lit)
			}
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.DeferStmt:
			if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok && releaseMethods[sel.Sel.Name] {
				if mutexVarOf(pkg, sel.X) != nil {
					return false // release at function end: lock held until return
				}
			}
			return true // deferred literals and calls: walk as if in place
		case *ast.FuncLit:
			// Reached outside a go/defer/call-in-place context: the literal
			// is stored and may run at any time, on its own lock state.
			*spawned = append(*spawned, n)
			return false
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, walk) // invoked in place: runs inline
				for _, arg := range n.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && (acquireMethods[sel.Sel.Name] || releaseMethods[sel.Sel.Name]) {
				if mu := mutexVarOf(pkg, sel.X); mu != nil {
					ops = append(ops, lockOp{pos: n.Pos(), mu: mu, release: releaseMethods[sel.Sel.Name]})
					return true
				}
			}
			if fn := staticCallee(pkg, n); fn != nil {
				ops = append(ops, lockOp{pos: n.Pos(), fn: fn})
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })
	return ops
}

// funcDecls returns the package's function declarations with bodies, in
// file/source order.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// recordLockGraph registers a freshly loaded package in the module-wide
// graph: mutex declarations (names + ranks), per-function acquisition
// summaries (fixed point over the package's internal call graph; callees in
// dependency packages are already summarized), and held→acquired edges.
// Called by the loader, sequentially, before any analysis runs.
func recordLockGraph(pkg *Package, g *LockGraph) {
	forEachMutexDecl(pkg, func(v *types.Var, display string, isMutex bool, doc, comment *ast.CommentGroup) {
		if !isMutex {
			return
		}
		g.Names[v] = display
		if operands, pos, ok := lockrankDirective(doc, comment); ok {
			if rank, err := parseLockRank(operands, pos); err == nil {
				g.Ranks[v] = rank
			}
		}
	})

	decls := funcDecls(pkg)
	ops := func(fd *ast.FuncDecl) []lockOp {
		cached, ok := g.opsCache[fd]
		if !ok {
			var spawned []*ast.FuncLit
			cached = collectLockOps(pkg, fd.Body, &spawned)
			g.opsCache[fd] = cached
		}
		return cached
	}

	// Fixed point: a function may acquire its direct locks plus everything
	// its static callees may acquire. Spawned literals are excluded — their
	// acquisitions happen on another goroutine's (or a later) lock state.
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			obj := pkg.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			acq := g.Acquires[obj]
			if acq == nil {
				acq = make(map[*types.Var][]string)
				g.Acquires[obj] = acq
			}
			for _, op := range ops(fd) {
				switch {
				case op.mu != nil && !op.release:
					if acq[op.mu] == nil {
						acq[op.mu] = []string{fd.Name.Name}
						changed = true
					}
				case op.fn != nil:
					for mu, path := range g.Acquires[op.fn] {
						if acq[mu] == nil {
							acq[mu] = append([]string{fd.Name.Name}, path...)
							changed = true
						}
					}
				}
			}
		}
	}

	for _, fd := range decls {
		var spawned []*ast.FuncLit
		body := collectLockOps(pkg, fd.Body, &spawned)
		g.emitEdges(pkg, body, fd.Name.Name)
		for i := 0; i < len(spawned); i++ { // spawned literals can nest further ones
			var more []*ast.FuncLit
			inner := collectLockOps(pkg, spawned[i].Body, &more)
			g.emitEdges(pkg, inner, fd.Name.Name+" (goroutine)")
			spawned = append(spawned, more...)
		}
	}
}

// emitEdges simulates one op list in source order, recording a held→acquired
// edge for every direct acquisition and every call to a lock-taking function
// made while at least one lock is held.
func (g *LockGraph) emitEdges(pkg *Package, ops []lockOp, funcName string) {
	var held []*types.Var
	releaseLast := func(mu *types.Var) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == mu {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	for _, op := range ops {
		switch {
		case op.mu != nil && op.release:
			releaseLast(op.mu)
		case op.mu != nil:
			for _, h := range held {
				g.addEdge(h, op.mu, op.pos, pkg.ImportPath, []string{funcName})
			}
			held = append(held, op.mu)
		case op.fn != nil && len(held) > 0:
			for mu, path := range g.Acquires[op.fn] {
				for _, h := range held {
					g.addEdge(h, mu, op.pos, pkg.ImportPath, append([]string{funcName}, path...))
				}
			}
		}
	}
}

// addEdge records one held→acquired pair, deduplicated per package (the
// first site found in walk order wins, which is deterministic: files and ops
// are both walked in source order).
func (g *LockGraph) addEdge(from, to *types.Var, pos token.Pos, pkgPath string, path []string) {
	key := [2]*types.Var{from, to}
	if g.edgeSeen[key] == nil {
		g.edgeSeen[key] = make(map[string]bool)
	}
	if g.edgeSeen[key][pkgPath] {
		return
	}
	g.edgeSeen[key][pkgPath] = true
	g.Edges = append(g.Edges, LockEdge{From: from, To: to, Pos: pos, Pkg: pkgPath, Path: path})
}

func runLockOrder(pass *Pass) {
	g := pass.Locks
	if g == nil {
		return
	}
	checkLockRankDecls(pass, g)

	// Rank inversions and re-acquisitions on this package's edges.
	for _, e := range pass.edgesOf(g) {
		path := strings.Join(e.Path, " → ")
		if e.From == e.To {
			pass.Reportf(e.Pos, "acquires %s while already holding it (self-deadlock); path: %s", g.lockName(e.To), path)
			continue
		}
		fromRank, okF := g.Ranks[e.From]
		toRank, okT := g.Ranks[e.To]
		if okF && okT && toRank.Level <= fromRank.Level {
			pass.Reportf(e.Pos, "acquires %s (lockrank %d) while holding %s (lockrank %d); levels must strictly increase — path: %s",
				toRank.Name, toRank.Level, fromRank.Name, fromRank.Level, path)
		}
	}

	checkLockCycles(pass, g)
}

// edgesOf filters the shared edge set down to edges whose source lies in the
// pass's package.
func (p *Pass) edgesOf(g *LockGraph) []LockEdge {
	var out []LockEdge
	for _, e := range g.Edges {
		if e.Pkg == p.ImportPath {
			out = append(out, e)
		}
	}
	return out
}

// checkLockRankDecls validates this package's lockrank directives: operand
// shape, attachment to an actual mutex, and hierarchy-name consistency
// across the whole module (one name, one level).
func checkLockRankDecls(pass *Pass, g *LockGraph) {
	byName := make(map[string]LockRank)
	for _, r := range g.Ranks {
		prev, ok := byName[r.Name]
		if !ok || r.Pos < prev.Pos {
			byName[r.Name] = r
		}
	}
	// Findings anchor to the field declaration, not the directive comment,
	// so fixtures can carry their want markers as trailing comments.
	forEachMutexDecl(pass.Package, func(v *types.Var, display string, isMutex bool, doc, comment *ast.CommentGroup) {
		operands, pos, ok := lockrankDirective(doc, comment)
		if !ok {
			return
		}
		if !isMutex {
			pass.Reportf(v.Pos(), "//turbdb:lockrank on %s, which is not a sync.Mutex or sync.RWMutex", display)
			return
		}
		rank, err := parseLockRank(operands, pos)
		if err != nil {
			pass.Reportf(v.Pos(), "%v", err)
			return
		}
		if first, ok := byName[rank.Name]; ok && first.Pos != pos && first.Level != rank.Level {
			pass.Reportf(v.Pos(), "lockrank name %q redeclared with level %d (first declared with level %d)", rank.Name, rank.Level, first.Level)
		}
	})
}

// checkLockCycles finds cycles in the module-wide acquisition graph
// (self-edges excluded — reported separately) and reports each one exactly
// once, in the package owning the cycle's earliest edge, so the diagnostic
// is deterministic under parallel per-package analysis.
func checkLockCycles(pass *Pass, g *LockGraph) {
	adj := make(map[*types.Var][]LockEdge)
	var nodes []*types.Var
	seen := make(map[*types.Var]bool)
	for _, e := range g.Edges {
		if e.From == e.To {
			continue
		}
		adj[e.From] = append(adj[e.From], e)
		for _, v := range []*types.Var{e.From, e.To} {
			if !seen[v] {
				seen[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Pos() < nodes[j].Pos() })
	for _, edges := range adj {
		sort.Slice(edges, func(i, j int) bool { return edges[i].Pos < edges[j].Pos })
	}

	// DFS from each node in declaration order; the first back edge to the
	// root of the current path closes a cycle. Each cycle is canonicalized
	// by its minimum-position edge to report it once.
	reported := make(map[string]bool)
	for _, root := range nodes {
		var path []LockEdge
		onPath := map[*types.Var]bool{root: true}
		var dfs func(v *types.Var) bool
		dfs = func(v *types.Var) bool {
			for _, e := range adj[v] {
				if e.To == root {
					reportCycle(pass, g, append(path[:len(path):len(path)], e), reported)
					continue
				}
				if onPath[e.To] {
					continue // inner cycle; found when its own root is visited
				}
				onPath[e.To] = true
				path = append(path, e)
				dfs(e.To)
				path = path[:len(path)-1]
				delete(onPath, e.To)
			}
			return false
		}
		dfs(root)
	}
}

// reportCycle reports one closed acquisition cycle if its representative
// (earliest-position) edge belongs to the pass's package.
func reportCycle(pass *Pass, g *LockGraph, cycle []LockEdge, reported map[string]bool) {
	rep := cycle[0]
	for _, e := range cycle {
		if e.Pos < rep.Pos {
			rep = e
		}
	}
	if rep.Pkg != pass.ImportPath {
		return
	}
	names := make([]string, 0, len(cycle)+1)
	for _, e := range cycle {
		names = append(names, g.lockName(e.From))
	}
	sort.Strings(names) // canonical id independent of traversal rotation
	id := strings.Join(names, "|")
	if reported[id] {
		return
	}
	reported[id] = true

	// render the cycle starting from the representative edge
	start := 0
	for i, e := range cycle {
		if e.Pos == rep.Pos && e.From == rep.From && e.To == rep.To {
			start = i
			break
		}
	}
	var chain []string
	var paths []string
	for i := 0; i < len(cycle); i++ {
		e := cycle[(start+i)%len(cycle)]
		chain = append(chain, g.lockName(e.From))
		paths = append(paths, fmt.Sprintf("%s→%s via %s", g.lockName(e.From), g.lockName(e.To), strings.Join(e.Path, " → ")))
	}
	chain = append(chain, g.lockName(cycle[start].From))
	pass.Reportf(rep.Pos, "lock-order cycle %s (%s); two paths can deadlock", strings.Join(chain, " → "), strings.Join(paths, "; "))
}
