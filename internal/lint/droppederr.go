package lint

import (
	"go/ast"
	"go/types"
)

// DroppedErr flags silently discarded errors:
//
//   - a call used as a bare expression statement whose results include an
//     error (`tx.Commit()` on its own line);
//   - `defer f()` / `go f()` where f returns an error nobody will see;
//   - assignments that discard an error result into the blank identifier
//     (`_ = f()`, `v, _ := g()` where the blank lines up with an error);
//   - context.CancelFunc results dropped the same ways (`ctx, _ :=
//     context.WithTimeout(...)`): an uncalled cancel leaks the context's
//     timer and goroutine until the parent is canceled.
//
// Deliberate discards carry a `//lint:allow droppederr <reason>` comment.
// Calls into the fmt package and print-like best-effort writers
// ((*bytes.Buffer), (*strings.Builder)) are exempt: their error results are
// conventionally ignored.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "flag discarded error results outside the explicit allowlist",
	Run:  runDroppedErr,
}

func runDroppedErr(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call, "go ")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
}

// checkDiscardedCall reports a call whose error result(s) vanish.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr, kind string) {
	if _, ok := call.Fun.(*ast.FuncLit); ok {
		return // a literal invoked in place has its own statements checked
	}
	if isExemptCallee(pass, call) {
		return
	}
	t, ok := pass.Info.Types[call]
	if !ok {
		return
	}
	if typeContainsError(t.Type) {
		pass.Reportf(call.Pos(), "%sresult of %s includes an error that is discarded", kind, calleeName(call))
	}
	if typeContainsCancelFunc(t.Type) {
		pass.Reportf(call.Pos(), "%sresult of %s includes a context cancel function that is never called", kind, calleeName(call))
	}
}

// checkBlankAssign reports blank identifiers that swallow an error result.
func checkBlankAssign(pass *Pass, assign *ast.AssignStmt) {
	// form: lhs... = f()  (single call on the right)
	if len(assign.Rhs) == 1 {
		if call, ok := assign.Rhs[0].(*ast.CallExpr); ok && len(assign.Lhs) > 1 {
			if isExemptCallee(pass, call) {
				return
			}
			sig, ok := pass.Info.Types[call].Type.(*types.Tuple)
			if !ok || sig.Len() != len(assign.Lhs) {
				return
			}
			for i, lhs := range assign.Lhs {
				if !isBlank(lhs) {
					continue
				}
				if isErrorType(sig.At(i).Type()) {
					pass.Reportf(lhs.Pos(), "error result of %s discarded into _", calleeName(call))
				}
				if isCancelFuncType(sig.At(i).Type()) {
					pass.Reportf(lhs.Pos(), "cancel function from %s discarded into _; the context leaks until its parent ends", calleeName(call))
				}
			}
			return
		}
	}
	// form: _ = expr (including _ = f() with a single result)
	if len(assign.Lhs) == len(assign.Rhs) {
		for i, lhs := range assign.Lhs {
			if !isBlank(lhs) {
				continue
			}
			if call, ok := assign.Rhs[i].(*ast.CallExpr); ok {
				if isExemptCallee(pass, call) {
					continue
				}
				if t, ok := pass.Info.Types[call]; ok {
					if typeContainsError(t.Type) {
						pass.Reportf(lhs.Pos(), "error result of %s discarded into _", calleeName(call))
					}
					if typeContainsCancelFunc(t.Type) {
						pass.Reportf(lhs.Pos(), "cancel function from %s discarded into _; the context leaks until its parent ends", calleeName(call))
					}
				}
			}
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// typeContainsError reports whether a call's result type is, or includes,
// an error.
func typeContainsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// isCancelFuncType reports whether t is context.CancelFunc (or the cause
// variant), possibly through a named alias.
func isCancelFuncType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return false
	}
	return obj.Name() == "CancelFunc" || obj.Name() == "CancelCauseFunc"
}

// typeContainsCancelFunc reports whether a call's result type is, or
// includes, a context cancel function.
func typeContainsCancelFunc(t types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isCancelFuncType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isCancelFuncType(t)
}

// exemptTypes are receiver types whose write-style methods never fail in
// practice (they grow in memory).
var exemptTypes = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
}

// isExemptCallee reports whether errors from this call are conventionally
// ignored: anything in package fmt, and methods on in-memory writers.
func isExemptCallee(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch obj := pass.Info.Uses[sel.Sel].(type) {
	case *types.Func:
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			return true
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok && named.Obj().Pkg() != nil {
			return exemptTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
		}
	}
	return false
}

// calleeName renders the called expression for diagnostics.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
