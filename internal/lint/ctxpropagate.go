package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPropagate turns the repository's context-threading convention (PR 2's
// fault-tolerance contract: every distributed call is cancellable) into a
// compile-gate rule. It reports two classes of violation:
//
//  1. Inside any function that receives a context.Context, a call to a known
//     blocking operation that does not forward that context: passing
//     context.Background()/context.TODO()/nil to a callee that accepts a
//     context, calling time.Sleep (uncancellable by construction; use a
//     timer plus select on ctx.Done()), building requests with
//     http.NewRequest instead of http.NewRequestWithContext, the context-
//     free net/http convenience calls (http.Get, (*http.Client).Post, …),
//     and bare channel receives outside a select (which cannot observe
//     cancellation).
//
//  2. In the distributed-path packages (internal/mediator, internal/node,
//     internal/wire), an exported function that performs blocking I/O —
//     detected as a call whose callee accepts a context.Context, or one of
//     the known blocking operations above — while accepting no
//     context.Context parameter itself. Such a function is a dead end for
//     cancellation: its callers cannot bound it.
//
// The forwarding check is a per-function dataflow approximation: a context
// counts as forwarded when the argument is (derived from) any context in
// scope — the parameter itself, or a variable assigned from a call that was
// fed one (context.WithTimeout(ctx, …) and friends).
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "verify context.Context is accepted and forwarded on every blocking path",
	Run:  runCtxPropagate,
}

// ctxRequiredPkgs are the distributed-path packages (import-path suffixes)
// whose exported functions must accept a context when they perform I/O.
var ctxRequiredPkgs = []string{
	"internal/mediator",
	"internal/node",
	"internal/wire",
}

// httpNoCtxFuncs are package-level net/http helpers that hard-code
// context.Background underneath.
var httpNoCtxFuncs = map[string]string{
	"Get":        "use http.NewRequestWithContext + client.Do",
	"Head":       "use http.NewRequestWithContext + client.Do",
	"Post":       "use http.NewRequestWithContext + client.Do",
	"PostForm":   "use http.NewRequestWithContext + client.Do",
	"NewRequest": "use http.NewRequestWithContext",
}

// httpClientNoCtxMethods are (*http.Client) convenience methods that cannot
// carry a caller context.
var httpClientNoCtxMethods = map[string]bool{
	"Get": true, "Head": true, "Post": true, "PostForm": true,
}

func runCtxPropagate(pass *Pass) {
	required := pkgRequiresCtx(pass.ImportPath)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxVars := ctxParams(pass, fd.Type)
			if len(ctxVars) > 0 {
				checkCtxFlow(pass, fd.Body, fd.Name.Name, ctxVars)
			} else if required && fd.Name.IsExported() {
				checkExportedNeedsCtx(pass, fd)
			}
		}
	}
}

func pkgRequiresCtx(importPath string) bool {
	for _, suffix := range ctxRequiredPkgs {
		if strings.HasSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParams collects the context.Context parameters of a function type.
func ctxParams(pass *Pass, ft *ast.FuncType) map[*types.Var]bool {
	vars := make(map[*types.Var]bool)
	if ft.Params == nil {
		return vars
	}
	for _, f := range ft.Params.List {
		for _, name := range f.Names {
			if v, ok := pass.Info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				vars[v] = true
			}
		}
	}
	return vars
}

// calleeFunc resolves a call to its static *types.Func, or nil for dynamic
// calls and conversions.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	return calleeFuncInfo(pass.Info, call)
}

// calleeFuncInfo is calleeFunc for callers that hold only a types.Info
// (the loader's record passes, which run before any Pass exists).
func calleeFuncInfo(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// callSignature returns the signature of the called expression (static or
// dynamic), or nil for conversions and builtins.
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isPkgFunc reports whether fn is the named function of the named package.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// recvNamed returns the named type of fn's receiver (through pointers).
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// blockingNoCtxCall classifies calls that block with no way to thread a
// context; it returns a non-empty remedy string for them.
func blockingNoCtxCall(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return ""
	}
	if isPkgFunc(fn, "time", "Sleep") {
		return "time.Sleep cannot be canceled; use a timer and select on ctx.Done()"
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
		if recv := recvNamed(fn); recv != nil {
			if recv.Obj().Name() == "Client" && httpClientNoCtxMethods[fn.Name()] {
				return "use http.NewRequestWithContext + client.Do"
			}
		} else if remedy, ok := httpNoCtxFuncs[fn.Name()]; ok {
			return remedy
		}
	}
	return ""
}

// checkCtxFlow walks the body of a function holding the contexts in ctxVars
// and reports blocking calls that sidestep them. Nested function literals
// that declare their own context parameter start a fresh scope; other
// literals inherit the enclosing contexts (closures run on the creator's
// cancellation domain).
func checkCtxFlow(pass *Pass, body ast.Node, funcName string, ctxVars map[*types.Var]bool) {
	// selectPos marks the source ranges of select statements: receives
	// inside a select can be paired with a ctx.Done() case, so only bare
	// receives outside every select are uncancellable.
	var selects []*ast.SelectStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectStmt); ok {
			selects = append(selects, s)
		}
		return true
	})
	inSelect := func(n ast.Node) bool {
		for _, s := range selects {
			if n.Pos() >= s.Pos() && n.End() <= s.End() {
				return true
			}
		}
		return false
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			own := ctxParams(pass, n.Type)
			if len(own) > 0 {
				checkCtxFlow(pass, n.Body, funcName+" (func literal)", own)
				return false
			}
			return true // inherit: keep walking with the same ctxVars
		case *ast.AssignStmt:
			// Derived contexts: ctx2, cancel := context.WithTimeout(ctx, d)
			// makes ctx2 a context in scope too.
			trackDerivedCtx(pass, n, ctxVars)
		case *ast.UnaryExpr:
			// A bare receive outside any select cannot observe ctx.Done() —
			// unless it IS a receive from a context's Done channel, which is
			// the cancellation wait itself.
			if n.Op.String() == "<-" && !inSelect(n) && !isDoneChannel(pass, n.X) {
				pass.Reportf(n.Pos(), "blocking channel receive in %s ignores its ctx; select on ctx.Done() as well", funcName)
				return true
			}
		case *ast.CallExpr:
			if remedy := blockingNoCtxCall(pass, n); remedy != "" {
				pass.Reportf(n.Pos(), "%s holds a ctx but calls %s: %s", funcName, calleeName(n), remedy)
				return true
			}
			sig := callSignature(pass, n)
			if sig == nil || sig.Params().Len() == 0 || len(n.Args) == 0 {
				return true
			}
			if !isContextType(sig.Params().At(0).Type()) {
				return true
			}
			arg := ast.Unparen(n.Args[0])
			switch a := arg.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass, a); isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
					pass.Reportf(n.Pos(), "%s holds a ctx but passes context.%s() to %s; forward the ctx", funcName, fn.Name(), calleeName(n))
				}
			case *ast.Ident:
				if _, isNil := pass.Info.Uses[a].(*types.Nil); isNil {
					pass.Reportf(n.Pos(), "%s holds a ctx but passes nil to %s; forward the ctx", funcName, calleeName(n))
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// isDoneChannel reports whether e is a call to the Done method of a
// context.Context value.
func isDoneChannel(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	return ok && isContextType(tv.Type)
}

// trackDerivedCtx adds variables assigned from a context-fed call (ctx2,
// cancel := context.WithTimeout(ctx, …)) to the in-scope context set.
func trackDerivedCtx(pass *Pass, assign *ast.AssignStmt, ctxVars map[*types.Var]bool) {
	for _, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && isContextType(v.Type()) {
			ctxVars[v] = true
		}
	}
}

// checkExportedNeedsCtx flags exported distributed-path functions that
// perform blocking I/O with no context parameter to bound it.
func checkExportedNeedsCtx(pass *Pass, fd *ast.FuncDecl) {
	var reported bool
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if remedy := blockingNoCtxCall(pass, call); remedy != "" {
			pass.Reportf(fd.Name.Pos(), "exported %s performs blocking I/O (%s) but takes no context.Context", fd.Name.Name, calleeName(call))
			reported = true
			return false
		}
		sig := callSignature(pass, call)
		if sig == nil {
			return true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if isContextType(sig.Params().At(i).Type()) {
				pass.Reportf(fd.Name.Pos(), "exported %s performs blocking I/O (%s takes a ctx) but takes no context.Context itself", fd.Name.Name, calleeName(call))
				reported = true
				return false
			}
		}
		return true
	})
}
