// Package lint implements turbdb-vet, the repository's custom static-
// analysis suite. It is built directly on the standard library's go/parser
// and go/types (no golang.org/x/tools dependency) and ships thirteen
// repo-specific analyzers:
//
//	lockcheck    — fields annotated `// guarded by <mu>` may only be accessed
//	               by functions that hold that mutex;
//	droppederr   — error results may not be silently discarded (`_ = f()`,
//	               bare calls, blank assignments, defer/go of error-returning
//	               calls) outside an explicit allowlist;
//	floateq      — `==`/`!=` on float operands in numeric code, where a
//	               tolerance comparison is almost always intended (comparisons
//	               against an exact-zero sentinel are exempt);
//	magicatom    — hard-coded 8/512 atom-geometry literals outside the
//	               grid/morton constant definitions, keeping the atom size a
//	               single source of truth (grid.DefaultAtomSide);
//	ctxpropagate — functions that receive a context.Context must forward it
//	               to blocking callees, and exported functions of the
//	               distributed-path packages that perform I/O must accept one;
//	rowkernel    — functions annotated `//turbdb:rowkernel` must stay
//	               allocation-free: no make/append/new, no map operations, no
//	               defer, no interface conversions, and direct calls only to
//	               other annotated kernels (or the math package);
//	poolcheck    — sync.Pool hygiene: comma-ok type assertions on Get, no use
//	               of a value after Put, no capacity-dropping reslices of
//	               pooled slices;
//	lockorder    — mutexes annotated `//turbdb:lockrank <name> <level>` must
//	               be acquired in strictly increasing level order; the
//	               module-wide acquisition graph (propagated through static
//	               calls) is also checked for re-acquisition and cycles, with
//	               the full acquisition path in the diagnostic;
//	goroutinelife — every `go` statement needs a statically provable
//	               termination/ownership story: the body watches a context
//	               Done channel or is tracked by a sync.WaitGroup whose Wait
//	               is called; WaitGroup misuse (Add inside the tracked
//	               goroutine, Wait under a lock the goroutine needs) is
//	               flagged too;
//	atomichygiene — variables accessed via sync/atomic (or annotated
//	               //turbdb:atomic) must never be read or written plainly,
//	               and a field may not mix a `// guarded by` mutex regime
//	               with atomic access;
//	wirecompat   — json-tagged DTOs in internal/wire declare their frozen v1
//	               field set with `//turbdb:wire-baseline <keys>`; fields
//	               added after the baseline must carry omitempty and a fuzz
//	               seed, and DTO↔internal converters must cover every
//	               exported field (or mark it `//turbdb:wire-local reason`);
//	errclass     — errors created on the distributed path (wire, mediator,
//	               node, sched, faulttol) must be classified: a typed error
//	               implementing Transient()/OverQuota(), or a %w wrap of
//	               one; bare errors.New/fmt.Errorf and %v/%s reformatting
//	               that discards the class are findings;
//	metrichygiene — metric names match turbdb_[a-z0-9_]+ and are unique
//	               module-wide; registrations are hoisted to package-level
//	               vars (never per-call in //turbdb:rowkernel or scan/merge
//	               hot paths); counters are never decremented.
//
// Findings are suppressed with a `//lint:allow <check>[,<check>] reason`
// comment on the flagged line or on the line directly above it, or with the
// newer `//turbdb:ignore <check> <reason>` form, whose reason is mandatory
// (a reasonless ignore is itself a finding) and is carried into the -json
// report so suppressions stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker complaints; analysis proceeds on a
	// best-effort basis but the driver surfaces these loudly.
	TypeErrors []error
	// RowKernels maps the function objects carrying a //turbdb:rowkernel
	// annotation to true. The map instance is shared across every package
	// one Loader loads (dependencies load first), so analyzers can resolve
	// annotations on callees defined in other packages of the module.
	RowKernels map[types.Object]bool
	// Locks is the module-wide lock model (declared //turbdb:lockrank
	// hierarchy, per-function acquisition summaries, held→acquired edges).
	// Like RowKernels it is shared across every package one Loader loads and
	// populated sequentially at load time, so parallel analysis only reads it.
	Locks *LockGraph
	// Metrics is the module-wide index of constant-name metric
	// registrations (obs registry Counter/Gauge/Histogram calls), shared
	// and populated at load time like RowKernels and Locks, so
	// metrichygiene can report a name collision with the other package
	// named even though packages analyze in parallel.
	Metrics *MetricRegistry
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
	// Suppressed marks findings silenced by a //lint:allow or
	// //turbdb:ignore directive; they do not fail the gate but are carried
	// into machine-readable reports.
	Suppressed bool
	// SuppressReason is the mandatory reason of the //turbdb:ignore
	// directive that silenced this finding (empty for //lint:allow, whose
	// free-text reason is reviewed by humans, not parsed).
	SuppressReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// Pass gives one analyzer access to one package.
type Pass struct {
	*Package
	check  string
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full turbdb-vet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockCheck, DroppedErr, FloatEq, MagicAtom, CtxPropagate, RowKernel, PoolCheck, LockOrder, GoroutineLife, AtomicHygiene, WireCompat, ErrClass, MetricHygiene}
}

// allowRe matches suppression directives: //lint:allow check1[,check2] reason
var allowRe = regexp.MustCompile(`^lint:allow\s+([a-z][a-z0-9,]*)`)

// ignoreRe matches the newer suppression form: //turbdb:ignore check reason.
// The reason group is optional here so a reasonless directive can be parsed
// and reported as malformed instead of silently not matching.
var ignoreRe = regexp.MustCompile(`^turbdb:ignore\s+([a-z][a-z0-9]*)(?:\s+(\S.*))?$`)

// suppressions maps check name → source line → suppression reason for the
// lines a directive covers: the directive's own line and the line below it
// (so a directive can trail the flagged statement or sit above it).
// malformed collects //turbdb:ignore directives missing their mandatory
// reason; these are findings in their own right.
type suppressions struct {
	byLine    map[string]map[int]string
	malformed []Diagnostic
}

func (s *suppressions) lookup(check string, line int) (reason string, ok bool) {
	reason, ok = s.byLine[check][line]
	return reason, ok
}

func (s *suppressions) add(check string, line int, reason string) {
	if s.byLine[check] == nil {
		if s.byLine == nil {
			s.byLine = make(map[string]map[int]string)
		}
		s.byLine[check] = make(map[int]string)
	}
	s.byLine[check][line] = reason
	s.byLine[check][line+1] = reason
}

// collectSuppressions extracts every //lint:allow and //turbdb:ignore
// directive of the package.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	sup := &suppressions{byLine: make(map[string]map[int]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if m := allowRe.FindStringSubmatch(text); m != nil {
					line := fset.Position(c.Pos()).Line
					for _, check := range strings.Split(m[1], ",") {
						sup.add(check, line, "")
					}
					continue
				}
				if m := ignoreRe.FindStringSubmatch(text); m != nil {
					line := fset.Position(c.Pos()).Line
					if m[2] == "" {
						sup.malformed = append(sup.malformed, Diagnostic{
							Pos:     fset.Position(c.Pos()),
							Check:   "ignore",
							Message: fmt.Sprintf("//turbdb:ignore %s is missing its mandatory reason", m[1]),
						})
						continue
					}
					sup.add(m[1], line, m[2])
				}
			}
		}
	}
	return sup
}

// allowedLines is the legacy view of collectSuppressions kept for the
// directive-scope tests: per check name, the covered source lines.
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	sup := collectSuppressions(fset, files)
	out := make(map[string]map[int]bool)
	for check, lines := range sup.byLine {
		out[check] = make(map[int]bool, len(lines))
		for line := range lines {
			out[check][line] = true
		}
	}
	return out
}

// Analyze runs the given analyzers over one package and returns the
// unsuppressed findings sorted by position. Malformed suppression
// directives (a //turbdb:ignore without a reason) count as findings.
func Analyze(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	active, _ := AnalyzeAll(pkg, analyzers)
	return active
}

// AnalyzeAll runs the given analyzers over one package and returns both the
// active findings (which fail the gate) and the suppressed ones (silenced
// by a directive, carried into machine-readable reports with their reasons).
// Both slices are sorted by position.
func AnalyzeAll(pkg *Package, analyzers []*Analyzer) (active, suppressed []Diagnostic) {
	active, suppressed, _ = AnalyzeAllTimed(pkg, analyzers)
	return active, suppressed
}

// AnalyzeAllTimed is AnalyzeAll plus per-analyzer wall-clock timing for this
// package, keyed by check name. The driver sums timings across packages to
// attribute gate latency to individual analyzers (-timings) and to enforce
// the suite's wall-clock budget (-budget).
func AnalyzeAllTimed(pkg *Package, analyzers []*Analyzer) (active, suppressed []Diagnostic, timings map[string]time.Duration) {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	active = append(active, sup.malformed...)
	timings = make(map[string]time.Duration, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Package: pkg,
			check:   a.Name,
			report: func(d Diagnostic) {
				if reason, ok := sup.lookup(d.Check, d.Pos.Line); ok {
					d.Suppressed = true
					d.SuppressReason = reason
					suppressed = append(suppressed, d)
					return
				}
				active = append(active, d)
			},
		}
		start := time.Now()
		a.Run(pass)
		timings[a.Name] += time.Since(start)
	}
	sortDiags(active)
	sortDiags(suppressed)
	return active, suppressed, timings
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
