// Package lint implements turbdb-vet, the repository's custom static-
// analysis suite. It is built directly on the standard library's go/parser
// and go/types (no golang.org/x/tools dependency) and ships four
// repo-specific analyzers:
//
//	lockcheck  — fields annotated `// guarded by <mu>` may only be accessed
//	             by functions that hold that mutex;
//	droppederr — error results may not be silently discarded (`_ = f()`,
//	             bare calls, blank assignments, defer/go of error-returning
//	             calls) outside an explicit allowlist;
//	floateq    — `==`/`!=` on float operands in numeric code, where a
//	             tolerance comparison is almost always intended (comparisons
//	             against an exact-zero sentinel are exempt);
//	magicatom  — hard-coded 8/512 atom-geometry literals outside the
//	             grid/morton constant definitions, keeping the atom size a
//	             single source of truth (grid.DefaultAtomSide).
//
// Findings are suppressed with a `//lint:allow <check>[,<check>] reason`
// comment on the flagged line or on the line directly above it. The reason
// is required by convention (turbdb-vet does not parse it, reviewers do).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker complaints; analysis proceeds on a
	// best-effort basis but the driver surfaces these loudly.
	TypeErrors []error
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// Pass gives one analyzer access to one package.
type Pass struct {
	*Package
	check  string
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full turbdb-vet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockCheck, DroppedErr, FloatEq, MagicAtom}
}

// allowRe matches suppression directives: //lint:allow check1[,check2] reason
var allowRe = regexp.MustCompile(`^lint:allow\s+([a-z][a-z0-9,]*)`)

// allowedLines extracts, per check name, the set of source lines a
// suppression directive covers: the directive's own line and the line below
// it (so the directive can trail the flagged statement or sit above it).
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	allowed := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				m := allowRe.FindStringSubmatch(strings.TrimSpace(text))
				if m == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, check := range strings.Split(m[1], ",") {
					if allowed[check] == nil {
						allowed[check] = make(map[int]bool)
					}
					allowed[check][line] = true
					allowed[check][line+1] = true
				}
			}
		}
	}
	return allowed
}

// Analyze runs the given analyzers over one package and returns the
// unsuppressed findings sorted by position.
func Analyze(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	allowed := allowedLines(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Package: pkg,
			check:   a.Name,
			report: func(d Diagnostic) {
				if allowed[d.Check][d.Pos.Line] {
					return
				}
				diags = append(diags, d)
			},
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}
