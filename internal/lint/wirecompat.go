package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
)

// WireCompat turns PR 5/7/8's wire-evolution convention into a compile
// gate, clearing the runway for the binary protocol rewrite: once the
// codec changes underneath, nothing but this analyzer pins the JSON
// semantics the old peers rely on.
//
// A wire DTO is any struct with json-tagged fields declared in an
// internal/wire package. Each one must carry a //turbdb:wire-baseline
// directive naming its frozen v1 field set — the json keys that are
// always encoded. Against that registry, WireCompat reports:
//
//   - a DTO struct with no baseline directive (the frozen set must be
//     explicit, not inferred from today's tags);
//   - a baseline key with no matching field (removing or renaming a
//     frozen wire field breaks old decoders);
//   - a baseline field carrying omitempty (a frozen field must always
//     encode — old strict decoders expect it);
//   - a post-baseline field missing omitempty (new fields must vanish
//     from the encoding when unset, so old peers see byte-identical
//     messages);
//   - a post-baseline field with no fuzz seed: its Go name or quoted
//     json key must appear in one of the package's Fuzz* test files, so
//     the strict-decode fuzzers actually exercise it;
//   - duplicate json keys, exported fields with no json tag, and
//     embedded fields without a tag (which promote their fields into the
//     wire shape implicitly).
//
// DTO↔internal converters — a function or method with exactly one input
// struct and one result struct where at least one side is a DTO — must
// touch every exported field of both sides, so adding a field to a
// struct but not its converter fails the gate with the drifted field
// named. Fields that exist only on the wire (trace plumbing) opt out
// per-field with `//turbdb:wire-local <reason>`; pure delegation bodies
// (a single `return f(x)`) are exempt. Test files are exempt throughout.
var WireCompat = &Analyzer{
	Name: "wirecompat",
	Doc:  "wire DTOs evolve against an explicit //turbdb:wire-baseline: omitempty + fuzz seeds for new fields, converters cover every field",
	Run:  runWireCompat,
}

func pkgIsWireScoped(importPath string) bool {
	return strings.HasSuffix(importPath, "internal/wire") || strings.Contains(importPath, "internal/wire/")
}

// wireField is one json-encoded field of a DTO struct.
type wireField struct {
	obj       *types.Var
	jsonName  string
	omitEmpty bool
	pos       token.Pos
}

// wireDTOInfo is one DTO struct with its baseline registry.
type wireDTOInfo struct {
	name        string
	hasBaseline bool
	baseline    map[string]bool
	fields      []wireField
}

var wireBaselineRe = regexp.MustCompile(`^turbdb:wire-baseline\s+(\S+)\s*$`)
var wireLocalRe = regexp.MustCompile(`^turbdb:wire-local(?:\s+(\S.*))?$`)

func runWireCompat(pass *Pass) {
	if !pkgIsWireScoped(pass.ImportPath) {
		return
	}
	corpus := fuzzCorpus(pass.Dir)
	dtos := make(map[types.Object]*wireDTOInfo)
	wireLocal := make(map[*types.Var]bool)
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkWireStruct(pass, gd, ts, st, corpus, dtos, wireLocal)
			}
		}
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWireConverter(pass, fd, dtos, wireLocal)
		}
	}
}

// checkWireStruct applies the per-struct rules and records DTO structs
// for the converter pass.
func checkWireStruct(pass *Pass, gd *ast.GenDecl, ts *ast.TypeSpec, st *ast.StructType, corpus []byte, dtos map[types.Object]*wireDTOInfo, wireLocal map[*types.Var]bool) {
	tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	tstruct, ok := tn.Type().Underlying().(*types.Struct)
	if !ok || tstruct.NumFields() != fieldCount(st) {
		return
	}
	tagged := 0
	for i := 0; i < tstruct.NumFields(); i++ {
		tag, has := reflect.StructTag(tstruct.Tag(i)).Lookup("json")
		if has && tag != "-" {
			tagged++
		}
	}
	if tagged == 0 {
		return // not a wire DTO; internal structs carry no json shape
	}

	info := &wireDTOInfo{name: ts.Name.Name}
	seenKeys := make(map[string]token.Pos)
	idx := 0
	for _, af := range st.Fields.List {
		n := len(af.Names)
		if n == 0 {
			n = 1
		}
		for k := 0; k < n; k++ {
			fobj := tstruct.Field(idx)
			tag := reflect.StructTag(tstruct.Tag(idx))
			idx++
			jsonTag, hasTag := tag.Lookup("json")
			local, localOK := wireLocalDirective(af)
			if localOK && !local {
				pass.Reportf(af.Pos(), "//turbdb:wire-local on %s.%s is missing its mandatory reason", ts.Name.Name, fobj.Name())
			}
			pos := af.Pos()
			if len(af.Names) > k {
				pos = af.Names[k].Pos()
			}
			if fobj.Embedded() && !hasTag {
				pass.Reportf(pos, "embedded field %s in wire DTO %s promotes its fields into the wire shape implicitly; give it an explicit json tag or flatten the fields", fobj.Name(), ts.Name.Name)
				continue
			}
			if !hasTag {
				if fobj.Exported() {
					pass.Reportf(pos, "exported field %s.%s has no json tag; wire fields must name their key explicitly", ts.Name.Name, fobj.Name())
				}
				continue
			}
			if jsonTag == "-" || !fobj.Exported() {
				continue
			}
			name, opts, _ := strings.Cut(jsonTag, ",")
			if name == "" {
				name = fobj.Name()
			}
			if prev, dup := seenKeys[name]; dup {
				pass.Reportf(pos, "duplicate json key %q in wire DTO %s (also at %s)", name, ts.Name.Name, pass.Fset.Position(prev))
			}
			seenKeys[name] = pos
			f := wireField{
				obj:       fobj,
				jsonName:  name,
				omitEmpty: jsonOptHas(opts, "omitempty"),
				pos:       pos,
			}
			if local {
				wireLocal[fobj] = true
			}
			info.fields = append(info.fields, f)
		}
	}
	dtos[tn] = info

	info.hasBaseline, info.baseline = wireBaseline(pass, ts.Name.Name, gd, ts)
	if !info.hasBaseline {
		pass.Reportf(ts.Name.Pos(), "wire DTO %s has no //turbdb:wire-baseline directive; declare its frozen always-encoded field set", ts.Name.Name)
		return // membership checks would be noise without the registry
	}
	present := make(map[string]bool, len(info.fields))
	for _, f := range info.fields {
		present[f.jsonName] = true
		if info.baseline[f.jsonName] {
			if f.omitEmpty {
				pass.Reportf(f.pos, "%s.%s (json %q) is in the wire baseline but carries omitempty; frozen v1 fields are always encoded", ts.Name.Name, f.obj.Name(), f.jsonName)
			}
			continue
		}
		if !f.omitEmpty {
			pass.Reportf(f.pos, "%s.%s (json %q) was added after the wire baseline and must carry omitempty so old peers see byte-identical messages", ts.Name.Name, f.obj.Name(), f.jsonName)
		}
		if !seedMentions(corpus, f.obj.Name(), f.jsonName) {
			pass.Reportf(f.pos, "%s.%s (json %q) has no fuzz seed; add a seed mentioning it to the package's Fuzz* corpus so strict decoding is exercised", ts.Name.Name, f.obj.Name(), f.jsonName)
		}
	}
	for key := range info.baseline {
		if !present[key] {
			pass.Reportf(ts.Name.Pos(), "baseline field %q of %s is gone from the struct; removing or renaming a frozen wire field breaks decode compatibility", key, ts.Name.Name)
		}
	}
}

func fieldCount(st *ast.StructType) int {
	n := 0
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

func jsonOptHas(opts, want string) bool {
	for opts != "" {
		var o string
		o, opts, _ = strings.Cut(opts, ",")
		if o == want {
			return true
		}
	}
	return false
}

// wireBaseline parses the //turbdb:wire-baseline directive off a type
// declaration's doc comments. The operand is a comma-separated list of
// json keys; "-" declares an explicitly empty baseline (a struct whose
// every field postdates v1).
func wireBaseline(pass *Pass, structName string, gd *ast.GenDecl, ts *ast.TypeSpec) (bool, map[string]bool) {
	for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "turbdb:wire-baseline") {
				continue
			}
			m := wireBaselineRe.FindStringSubmatch(text)
			if m == nil {
				pass.Reportf(c.Pos(), "malformed //turbdb:wire-baseline on %s; expected a comma-separated list of json keys (or - for an empty set)", structName)
				return false, nil
			}
			set := make(map[string]bool)
			if m[1] != "-" {
				for _, key := range strings.Split(m[1], ",") {
					set[key] = true
				}
			}
			return true, set
		}
	}
	return false, nil
}

// wireLocalDirective parses //turbdb:wire-local off a field's doc or
// trailing comment. ok reports the directive is present; present-but-
// reasonless returns ok=true, local=false so the caller can flag it.
func wireLocalDirective(af *ast.Field) (local, ok bool) {
	for _, doc := range []*ast.CommentGroup{af.Doc, af.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			text := strings.TrimPrefix(c.Text, "//")
			m := wireLocalRe.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			return m[1] != "", true
		}
	}
	return false, false
}

// fuzzCorpus concatenates the package's fuzz test sources (read raw, so
// the check works without -tests).
func fuzzCorpus(dir string) []byte {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var buf []byte
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil || !bytes.Contains(data, []byte("func Fuzz")) {
			continue
		}
		buf = append(buf, data...)
		buf = append(buf, '\n')
	}
	return buf
}

// seedMentions reports whether the fuzz corpus mentions a field, by Go
// name (word match) or by quoted json key.
func seedMentions(corpus []byte, goName, jsonName string) bool {
	if len(corpus) == 0 {
		return false
	}
	if bytes.Contains(corpus, []byte(fmt.Sprintf("%q", jsonName))) {
		return true
	}
	re := regexp.MustCompile(`\b` + regexp.QuoteMeta(goName) + `\b`)
	return re.Match(corpus)
}

// checkWireConverter applies the field-coverage rule to DTO↔internal
// converters: one input struct, one result struct, at least one side a
// DTO of this package, every exported field of both sides touched.
func checkWireConverter(pass *Pass, fd *ast.FuncDecl, dtos map[types.Object]*wireDTOInfo, wireLocal map[*types.Var]bool) {
	var src, dst types.Type
	sig, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	fsig := sig.Type().(*types.Signature)
	if fsig.Results().Len() != 1 {
		return
	}
	dst = fsig.Results().At(0).Type()
	switch {
	case fsig.Recv() != nil && fsig.Params().Len() == 0:
		src = fsig.Recv().Type()
	case fsig.Recv() == nil && fsig.Params().Len() == 1:
		src = fsig.Params().At(0).Type()
	default:
		return
	}
	srcStruct, srcNamed := structSide(src)
	dstStruct, dstNamed := structSide(dst)
	if srcStruct == nil || dstStruct == nil {
		return
	}
	_, srcDTO := dtos[srcNamed.Obj()]
	_, dstDTO := dtos[dstNamed.Obj()]
	if !srcDTO && !dstDTO {
		return
	}
	if isDelegationBody(fd.Body) {
		return
	}
	used := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.Info.Uses[id].(*types.Var); ok && v.IsField() {
			used[v] = true
		}
		return true
	})
	for _, side := range []struct {
		st    *types.Struct
		named *types.Named
	}{{srcStruct, srcNamed}, {dstStruct, dstNamed}} {
		for i := 0; i < side.st.NumFields(); i++ {
			f := side.st.Field(i)
			if !f.Exported() || used[f] || wireLocal[f] {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "converter %s never touches %s.%s; the DTO and internal field sets have drifted — convert the field or mark it //turbdb:wire-local", fd.Name.Name, side.named.Obj().Name(), f.Name())
		}
	}
}

// structSide unwraps pointers and slices down to a named struct type.
func structSide(t types.Type) (*types.Struct, *types.Named) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		default:
			named, ok := t.(*types.Named)
			if !ok {
				return nil, nil
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return nil, nil
			}
			return st, named
		}
	}
}

// isDelegationBody reports whether a body is a single `return f(...)`
// — a pure delegation whose coverage is checked at the delegate.
func isDelegationBody(body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	_, ok = ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	return ok
}
