package lint

import (
	"go/ast"
	"go/types"
)

// PoolCheck enforces sync.Pool hygiene on the block-recycling hot path
// (PR 3's size-bucketed pool of halo-extended blocks). Per function it
// checks three contracts:
//
//  1. Every value drawn with Get must be type-asserted with the comma-ok
//     form before use. A pool is shared mutable state: a plain assertion
//     turns an unexpected element type (a refactor that changes what gets
//     Put) into a runtime panic inside the scan loop, while comma-ok
//     degrades to the allocate-fresh fallback.
//  2. A value passed to Put must not be used afterwards in the same block:
//     after Put, another goroutine may already own it, so any later read or
//     write is a data race the race detector only catches under load.
//  3. A pooled slice must not be resliced off its origin (s = s[1:], or
//     Put(s[n:])): the dropped prefix capacity is lost for every future
//     borrower, silently shrinking the pool's buffers until they are
//     useless.
//
// The analysis is a per-function approximation: values are tracked through
// direct assignment from Get and through type assertions of such values;
// use-after-Put is checked within the statement list of the block containing
// the Put.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "check sync.Pool usage: comma-ok Get assertions, no use after Put, no capacity-dropping reslices",
	Run:  runPoolCheck,
}

func runPoolCheck(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolUsage(pass, fd.Body)
		}
	}
}

// poolMethod reports whether call invokes the named method of *sync.Pool.
func poolMethod(pass *Pass, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.FullName() == "(*sync.Pool)."+name
}

func checkPoolUsage(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: find Get calls and the variables their results land in —
	// both the raw interface value (v := p.Get()) and pooled concrete
	// values extracted by assertion (bl, ok := v.(*T)).
	getCalls := make(map[*ast.CallExpr]bool)
	rawVars := make(map[types.Object]*ast.CallExpr) // interface-typed Get results
	pooled := make(map[types.Object]bool)           // any value known to come from the pool
	claimed := make(map[*ast.CallExpr]bool)         // Get calls consumed by an assign or assert

	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && poolMethod(pass, call, "Get") {
			getCalls[call] = true
		}
		return true
	})
	isPooledExpr := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok {
			return getCalls[call]
		}
		if id, ok := e.(*ast.Ident); ok {
			obj := pass.Info.Uses[id]
			return rawVars[obj] != nil || pooled[obj]
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		rhs := ast.Unparen(assign.Rhs[0])
		if call, ok := rhs.(*ast.CallExpr); ok && getCalls[call] && len(assign.Lhs) == 1 {
			if id, ok := assign.Lhs[0].(*ast.Ident); ok {
				if obj := defOrUse(pass, id); obj != nil {
					rawVars[obj] = call
					claimed[call] = true
				}
			}
		}
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok && isPooledExpr(ta.X) && len(assign.Lhs) >= 1 {
			if id, ok := assign.Lhs[0].(*ast.Ident); ok {
				if obj := defOrUse(pass, id); obj != nil {
					pooled[obj] = true
				}
			}
		}
		return true
	})

	// Pass 2: check every type assertion on a pooled value for comma-ok
	// form, and record which raw Get results were asserted at all.
	asserted := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ta, ok := n.(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil || !isPooledExpr(ta.X) {
			return true
		}
		if call, ok := ast.Unparen(ta.X).(*ast.CallExpr); ok {
			claimed[call] = true
		}
		if id, ok := ast.Unparen(ta.X).(*ast.Ident); ok {
			asserted[pass.Info.Uses[id]] = true
		}
		if !isCommaOkAssert(pass, ta) {
			pass.Reportf(ta.Pos(), "type assertion on sync.Pool.Get result must use the comma-ok form")
		}
		return true
	})
	for obj, call := range rawVars {
		if !asserted[obj] {
			pass.Reportf(call.Pos(), "result of sync.Pool.Get is never type-asserted; assert it with the comma-ok form before use")
		}
	}
	for call := range getCalls {
		if !claimed[call] {
			pass.Reportf(call.Pos(), "result of sync.Pool.Get used without a type assertion")
		}
	}

	// Pass 3: use-after-Put within each statement list, and capacity-
	// dropping reslices of pooled slices.
	ast.Inspect(body, func(n ast.Node) bool {
		if block, ok := n.(*ast.BlockStmt); ok {
			checkUseAfterPut(pass, block.List)
		}
		if assign, ok := n.(*ast.AssignStmt); ok {
			checkPooledReslice(pass, assign, pooled, rawVars)
		}
		if call, ok := n.(*ast.CallExpr); ok && poolMethod(pass, call, "Put") && len(call.Args) == 1 {
			if se, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok && dropsPrefixCap(se) {
				pass.Reportf(call.Args[0].Pos(), "Put of a reslice that drops prefix capacity; future Gets see a shrunken buffer")
			}
		}
		return true
	})
}

func defOrUse(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// isCommaOkAssert reports whether a type assertion is used in comma-ok form;
// go/types records the (T, bool) tuple for such expressions.
func isCommaOkAssert(pass *Pass, ta *ast.TypeAssertExpr) bool {
	tv, ok := pass.Info.Types[ta]
	if !ok {
		return false
	}
	_, isTuple := tv.Type.(*types.Tuple)
	return isTuple
}

// checkUseAfterPut scans one statement list: once a pooled value is handed
// back with Put, any later mention of the same variable (other than
// reassigning it) is a use of memory another goroutine may own.
func checkUseAfterPut(pass *Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || !poolMethod(pass, call, "Put") || len(call.Args) != 1 {
			continue
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			continue
		}
		for _, later := range stmts[i+1:] {
			reportUses(pass, later, obj, id.Name)
		}
	}
}

// reportUses flags reads of obj inside stmt. Idents that are pure
// reassignment targets (LHS of =) are exempt: overwriting the variable after
// Put is the correct way to drop the reference.
func reportUses(pass *Pass, stmt ast.Stmt, obj types.Object, name string) {
	lhsOnly := make(map[*ast.Ident]bool)
	ast.Inspect(stmt, func(n ast.Node) bool {
		if assign, ok := n.(*ast.AssignStmt); ok && assign.Tok.String() == "=" {
			for _, lhs := range assign.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					lhsOnly[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(stmt, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || lhsOnly[id] || pass.Info.Uses[id] != obj {
			return true
		}
		pass.Reportf(id.Pos(), "%s is used after being Put back into its sync.Pool; another goroutine may own it", name)
		return true
	})
}

// checkPooledReslice flags s = s[low:…] with non-zero low on a pooled slice:
// the prefix capacity is lost to every future borrower.
func checkPooledReslice(pass *Pass, assign *ast.AssignStmt, pooled map[types.Object]bool, rawVars map[types.Object]*ast.CallExpr) {
	for i, lhs := range assign.Lhs {
		if i >= len(assign.Rhs) {
			break
		}
		lid, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := defOrUse(pass, lid)
		if obj == nil || (!pooled[obj] && rawVars[obj] == nil) {
			continue
		}
		se, ok := ast.Unparen(assign.Rhs[i]).(*ast.SliceExpr)
		if !ok {
			continue
		}
		xid, ok := ast.Unparen(se.X).(*ast.Ident)
		if !ok || pass.Info.Uses[xid] != obj {
			continue
		}
		if dropsPrefixCap(se) {
			pass.Reportf(se.Pos(), "reslicing pooled %s off its origin drops capacity for every future borrower; keep the full slice and track length separately", lid.Name)
		}
	}
}

// dropsPrefixCap reports whether a slice expression discards the prefix of
// its backing array (non-zero low bound).
func dropsPrefixCap(se *ast.SliceExpr) bool {
	return se.Low != nil && !isIntLit(se.Low, "0")
}
