package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags `==` and `!=` between floating-point operands. In the
// numeric kernels (derived fields, stencils, FFT, synthesis) exact float
// equality is almost always a bug: values arrive through rounded
// arithmetic, so a tolerance comparison (math.Abs(a-b) <= eps) is required.
//
// Two cases are exempt:
//
//   - comparisons where either side is a compile-time constant equal to
//     exactly zero — the "unset sentinel" idiom (cfg.RMS == 0) and
//     origin checks (k2 == 0 for integer-valued wavenumbers) are exact;
//   - comparisons where both sides are constants (decided at compile time).
//
// Intentional exact comparisons (e.g. sort tie-breaks) carry a
// `//lint:allow floateq <reason>` comment.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= on floating-point operands where tolerance comparison is required",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.Info.Types[be.X]
			yt, yok := pass.Info.Types[be.Y]
			if !xok || !yok {
				return true
			}
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant expression, decided at compile time
			}
			if isExactZero(xt.Value) || isExactZero(yt.Value) {
				return true // exact-zero sentinel comparison
			}
			pass.Reportf(be.OpPos, "%s on float operands; use a tolerance comparison", be.Op)
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point or
// complex kind.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isExactZero reports whether a constant value is exactly zero.
func isExactZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(v)) == 0 && constant.Sign(constant.Imag(v)) == 0
	}
	return false
}
