package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Loader parses and type-checks packages of the enclosing module. Packages
// inside the module are type-checked from source by the loader itself (in
// dependency order, lazily); imports outside the module (the standard
// library) are delegated to go/importer's source importer. This keeps the
// tool free of golang.org/x/tools while still giving analyzers full type
// information.
type Loader struct {
	ModuleRoot string
	ModulePath string
	// IncludeTests also loads _test.go files into their packages.
	IncludeTests bool

	fset       *token.FileSet
	std        types.Importer
	pkgs       map[string]*Package
	rowKernels map[types.Object]bool // //turbdb:rowkernel functions, module-wide
	locks      *LockGraph            // //turbdb:lockrank hierarchy + acquisition graph, module-wide
	metrics    *MetricRegistry       // constant-name metric registrations, module-wide
}

// NewLoader locates the module enclosing dir (by walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		rowKernels: make(map[types.Object]bool),
		locks:      NewLockGraph(),
		metrics:    NewMetricRegistry(),
	}, nil
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves package patterns into loaded packages. Supported patterns:
// "./..." (every package under the module root), a directory path, or a
// directory path ending in "/...".
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.resolveDirs(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
		}
		ip := l.ModulePath
		if rel != "." {
			ip = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// resolveDirs expands package patterns into package directories without
// loading anything. A recursive pattern walks every non-hidden,
// non-testdata, non-vendor directory under its root — cmd/ and internal/
// alike — so `turbdb-vet ./...` can never silently drop a package tree.
func (l *Loader) resolveDirs(patterns ...string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec = true
			pat = rest
			if pat == "" || pat == "." {
				pat = l.ModuleRoot
			}
		}
		if pat == "." {
			pat = l.ModuleRoot
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !rec {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path, l.IncludeTests) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string, includeTests bool) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && includeFile(dir, e.Name(), includeTests) {
			return true
		}
	}
	return false
}

// includeFile reports whether a file participates in the package on the
// current platform: Go source, not hidden, test files only on request, and
// build constraints (//go:build lines, GOOS/GOARCH name suffixes) satisfied.
// A file excluded by tags must never reach the type checker, where its
// legitimately conflicting declarations would poison the whole package.
func includeFile(dir, name string, includeTests bool) bool {
	if !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return false
	}
	if !includeTests && strings.HasSuffix(name, "_test.go") {
		return false
	}
	ok, err := build.Default.MatchFile(dir, name)
	return err == nil && ok
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.ModulePath {
		return l.ModuleRoot
	}
	rel := strings.TrimPrefix(importPath, l.ModulePath+"/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

func (l *Loader) isInternal(importPath string) bool {
	return importPath == l.ModulePath || strings.HasPrefix(importPath, l.ModulePath+"/")
}

// load parses and type-checks one module-internal package (cached).
func (l *Loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	l.pkgs[importPath] = nil // in-progress marker for cycle detection

	dir := l.dirFor(importPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !includeFile(dir, e.Name(), l.IncludeTests) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		// an external test package (package foo_test) shares the directory;
		// keep only files of the primary package
		if pkgName == "" && !strings.HasSuffix(f.Name.Name, "_test") {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	if pkgName != "" {
		kept := files[:0]
		for _, f := range files {
			if f.Name.Name == pkgName {
				kept = append(kept, f)
			}
		}
		files = kept
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	// load module-internal dependencies first
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if l.isInternal(path) {
				if _, err := l.load(path); err != nil {
					return nil, err
				}
			}
		}
	}

	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	//lint:allow droppederr type errors are collected via conf.Error above
	tpkg, _ := conf.Check(importPath, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	pkg.RowKernels = l.rowKernels
	l.recordRowKernels(pkg)
	pkg.Locks = l.locks
	recordLockGraph(pkg, l.locks)
	pkg.Metrics = l.metrics
	recordMetricSites(pkg, l.metrics)
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// recordRowKernels registers the package's //turbdb:rowkernel-annotated
// functions in the loader-wide map. Dependencies load before their
// importers, so by the time a package is analyzed the annotations of every
// callee it can name are already resolved.
func (l *Loader) recordRowKernels(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasRowKernelDirective(fd.Doc) {
				continue
			}
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				l.rowKernels[obj] = true
			}
		}
	}
}

// hasRowKernelDirective reports whether a doc comment group carries the
// //turbdb:rowkernel annotation (its own line, optionally with trailing
// commentary after a space).
func hasRowKernelDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == "turbdb:rowkernel" || strings.HasPrefix(text, "turbdb:rowkernel ") {
			return true
		}
	}
	return false
}

// loaderImporter resolves imports during type checking: module-internal
// packages come from the loader's own cache, everything else from the
// standard library source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if l.isInternal(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
