package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"path"
	"regexp"
	"strings"
)

// MetricHygiene turns PR 5's zero-alloc metrics convention into a
// compile gate. Metrics are registered through the obs registry's
// Counter/Gauge/Histogram methods; the exposition format and the
// dashboards both assume the names form one flat, stable namespace.
// MetricHygiene reports:
//
//   - a metric family that does not match turbdb_[a-z0-9_]+ (an optional
//     {label="value"} block may follow the family);
//   - a name registered more than once module-wide (the registry would
//     silently hand both callers the same instance — or panic on a kind
//     clash — so each name must have exactly one owning declaration);
//     duplicates are detected against a loader-wide registry populated at
//     load time, so the colliding package is named even when it is not
//     the one being analyzed;
//   - a constant-name registration inside a function body: hot paths
//     must observe through package-level vars, not re-look-up the
//     registry per call (names built with fmt.Sprintf from a constant
//     format — per-tenant/per-node gauges — are the sanctioned dynamic
//     exception, and only their family prefix is validated);
//   - a metric name that is neither a constant nor a constant-format
//     fmt.Sprintf (nothing to check statically);
//   - any registry lookup inside a //turbdb:rowkernel function or a
//     scan/merge function — the row-kernel hot path must not touch
//     registry maps at all;
//   - a Counter.Add with a constant negative argument: counters are
//     monotonic, use a Gauge.
//
// Test files are exempt: tests register scratch metrics against private
// registries and must not pollute the module-wide namespace check.
var MetricHygiene = &Analyzer{
	Name: "metrichygiene",
	Doc:  "turbdb_* metric names: valid, unique module-wide, package-level registration, no registry lookups on hot paths, monotonic counters",
	Run:  runMetricHygiene,
}

// MetricSite is one constant-name metric registration recorded at load
// time. The loader records sites module-wide (dependencies first), so an
// analyzer pass can name the other end of a name collision even when it
// lives in a package analyzed by a different goroutine.
type MetricSite struct {
	Name string
	Pkg  string
	Pos  token.Position
}

// MetricRegistry is the loader-wide registration index, populated
// sequentially at load time and only read during (parallel) analysis.
type MetricRegistry struct {
	byName map[string][]MetricSite
}

func NewMetricRegistry() *MetricRegistry {
	return &MetricRegistry{byName: make(map[string][]MetricSite)}
}

func (r *MetricRegistry) record(s MetricSite) {
	r.byName[s.Name] = append(r.byName[s.Name], s)
}

func (r *MetricRegistry) sites(name string) []MetricSite { return r.byName[name] }

// recordMetricSites indexes the package's constant-name registrations
// into the loader-wide registry. Test files are skipped: scratch metrics
// in tests are exempt from the namespace rules.
func recordMetricSites(pkg *Package, reg *MetricRegistry) {
	for _, file := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isMetricRegCall(pkg, call) {
				return true
			}
			if name, ok := constMetricName(pkg, call); ok {
				reg.record(MetricSite{Name: name, Pkg: pkg.ImportPath, Pos: pkg.Fset.Position(call.Pos())})
			}
			return true
		})
	}
}

// isMetricRegCall reports whether call registers a metric: a
// Counter/Gauge/Histogram method on an obs package's Registry type.
func isMetricRegCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFuncInfo(pkg.Info, call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	recv := recvNamed(fn)
	if recv == nil || recv.Obj().Name() != "Registry" {
		return false
	}
	p := recv.Obj().Pkg()
	return p != nil && path.Base(p.Path()) == "obs"
}

// constMetricName returns the constant string value of the call's name
// argument.
func constMetricName(pkg *Package, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

var metricFamilyRe = regexp.MustCompile(`^turbdb_[a-z0-9_]+$`)
var metricLabelRe = regexp.MustCompile(`^\{[^{}]+\}$`)
var hotFuncNameRe = regexp.MustCompile(`(?i)scan|merge`)

func runMetricHygiene(pass *Pass) {
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				checkMetricGenDecl(pass, d)
			case *ast.FuncDecl:
				checkMetricFuncDecl(pass, d)
			}
		}
		checkCounterDecrements(pass, file)
	}
}

// checkMetricGenDecl checks registrations in package-level declarations
// — the sanctioned home for constant-name metrics.
func checkMetricGenDecl(pass *Pass, gd *ast.GenDecl) {
	ast.Inspect(gd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMetricRegCall(pass.Package, call) {
			return true
		}
		checkMetricName(pass, call)
		return true
	})
}

// checkMetricFuncDecl checks registrations inside function bodies: on a
// hot path they are banned outright; elsewhere constant names must be
// hoisted to package level and only Sprintf-from-constant-format names
// (per-tenant/per-node series) may stay.
func checkMetricFuncDecl(pass *Pass, fd *ast.FuncDecl) {
	hot := hasRowKernelDirective(fd.Doc) || hotFuncNameRe.MatchString(fd.Name.Name)
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMetricRegCall(pass.Package, call) {
			return true
		}
		if hot {
			pass.Reportf(call.Pos(), "per-call registry lookup in hot-path function %s; preregister the metric in a package-level var", fd.Name.Name)
			return true
		}
		if name, ok := constMetricName(pass.Package, call); ok {
			pass.Reportf(call.Pos(), "metric %q is registered inside a function; hoist the registration to a package-level var so call sites share one instance", name)
			return true
		}
		if format, ok := sprintfConstFormat(pass, call.Args); ok {
			checkMetricFamilyPrefix(pass, call.Pos(), format)
			return true
		}
		pass.Reportf(call.Pos(), "metric name is neither a constant nor a constant-format fmt.Sprintf; names must be statically checkable")
		return true
	})
}

// checkMetricName validates a registration with a constant name and
// reports module-wide duplicates against the loader's registry.
func checkMetricName(pass *Pass, call *ast.CallExpr) {
	name, ok := constMetricName(pass.Package, call)
	if !ok {
		if format, ok := sprintfConstFormat(pass, call.Args); ok {
			checkMetricFamilyPrefix(pass, call.Pos(), format)
			return
		}
		pass.Reportf(call.Pos(), "metric name is neither a constant nor a constant-format fmt.Sprintf; names must be statically checkable")
		return
	}
	family, label := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		family, label = name[:i], name[i:]
	}
	if !metricFamilyRe.MatchString(family) {
		pass.Reportf(call.Pos(), "metric name %q must match turbdb_[a-z0-9_]+ (optionally followed by one {label=\"value\"} block)", name)
		return
	}
	if label != "" && !metricLabelRe.MatchString(label) {
		pass.Reportf(call.Pos(), "metric name %q has a malformed label block; expected {label=\"value\"}", name)
		return
	}
	if pass.Metrics == nil {
		return
	}
	sites := pass.Metrics.sites(name)
	if len(sites) < 2 {
		return
	}
	first := sites[0]
	if here := pass.Fset.Position(call.Pos()); here != first.Pos {
		pass.Reportf(call.Pos(), "metric %q is already registered at %s (package %s); metric names must be unique module-wide", name, first.Pos, first.Pkg)
	}
}

// checkMetricFamilyPrefix validates the static prefix of a
// Sprintf-built name: everything before the first verb or label block
// must already be a well-formed turbdb_ family.
func checkMetricFamilyPrefix(pass *Pass, pos token.Pos, format string) {
	prefix := format
	if i := strings.IndexAny(format, "%{"); i >= 0 {
		prefix = format[:i]
	}
	if !metricFamilyRe.MatchString(prefix) {
		pass.Reportf(pos, "dynamic metric name format %q must start with a turbdb_[a-z0-9_]+ family prefix", format)
	}
}

// sprintfConstFormat matches args of the shape fmt.Sprintf(<const
// format>, ...) and returns the format.
func sprintfConstFormat(pass *Pass, args []ast.Expr) (string, bool) {
	if len(args) == 0 {
		return "", false
	}
	call, ok := ast.Unparen(args[0]).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := calleeFunc(pass, call)
	if !isPkgFunc(fn, "fmt", "Sprintf") || len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkCounterDecrements flags Counter.Add calls with a constant
// negative argument anywhere in the file.
func checkCounterDecrements(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Name() != "Add" {
			return true
		}
		recv := recvNamed(fn)
		if recv == nil || recv.Obj().Name() != "Counter" {
			return true
		}
		p := recv.Obj().Pkg()
		if p == nil || path.Base(p.Path()) != "obs" {
			return true
		}
		tv, ok := pass.Info.Types[call.Args[0]]
		if !ok || tv.Value == nil {
			return true
		}
		if k := tv.Value.Kind(); (k == constant.Int || k == constant.Float) && constant.Sign(tv.Value) < 0 {
			pass.Reportf(call.Pos(), "counter decremented by a constant negative amount; counters are monotonic — use a Gauge for values that go down")
		}
		return true
	})
}
