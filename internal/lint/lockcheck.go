package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces the repository's `// guarded by <mu>` annotation: a
// struct field carrying that comment may only be read or written through a
// selector inside a function that demonstrably holds the named mutex.
//
// A function is considered to hold a guard when its body (not counting
// nested function literals) calls Lock/RLock/TryLock — or defers
// Unlock/RUnlock — on that mutex field, or when the function's name ends in
// "Locked" (the repository convention for helpers whose callers hold the
// lock). Function literals inherit the enclosing function's guards only
// when invoked or deferred in place; a literal launched with `go` starts
// with no guards, because it runs concurrently with its creator.
//
// This is a syntactic approximation, not a lock-set dataflow analysis: it
// does not distinguish instances (locking a.mu while touching b.field
// passes) and it ignores acquisition order. It exists to catch the real
// bug class — methods touching shared state with no locking at all.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "verify that `// guarded by <mu>` fields are accessed under their mutex",
	Run:  runLockCheck,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// lockMethods on a guard mutex that count as evidence of holding it.
var lockMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"Unlock": true, "RUnlock": true,
}

func runLockCheck(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	allGuards := make(map[*types.Var]bool)
	for _, mu := range guards {
		allGuards[mu] = true
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := heldGuards(pass, fd.Body, allGuards)
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				for mu := range allGuards {
					held[mu] = true
				}
			}
			checkGuardedAccesses(pass, fd.Body, guards, allGuards, held, fd.Name.Name)
		}
	}
}

// collectGuards maps each annotated field variable to its mutex field
// variable, validating the annotations as it goes.
func collectGuards(pass *Pass) map[*types.Var]*types.Var {
	guards := make(map[*types.Var]*types.Var)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldVars := make(map[string]*types.Var)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						fieldVars[name.Name] = v
					}
				}
			}
			for _, f := range st.Fields.List {
				guardName := guardAnnotation(f)
				if guardName == "" {
					continue
				}
				mu, ok := fieldVars[guardName]
				if !ok {
					pass.Reportf(f.Pos(), "guard %q named in annotation is not a field of %s", guardName, ts.Name.Name)
					continue
				}
				if !isMutexType(mu.Type()) {
					pass.Reportf(f.Pos(), "guard %s.%s is not a sync.Mutex or sync.RWMutex", ts.Name.Name, guardName)
					continue
				}
				for _, name := range f.Names {
					if v, ok := fieldVars[name.Name]; ok {
						guards[v] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, if any.
func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a pointer
// to either.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// heldGuards scans a function body (excluding nested function literals) for
// lock operations on guard mutexes.
func heldGuards(pass *Pass, body ast.Node, allGuards map[*types.Var]bool) map[*types.Var]bool {
	held := make(map[*types.Var]bool)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own context
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !lockMethods[sel.Sel.Name] {
				return true
			}
			if mu := mutexFieldOf(pass, sel.X); mu != nil && allGuards[mu] {
				held[mu] = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return held
}

// mutexFieldOf resolves an expression like `s.mu` (or `tx.db.mu`) to the
// mutex field variable it denotes, or nil.
func mutexFieldOf(pass *Pass, x ast.Expr) *types.Var {
	sel, ok := x.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && isMutexType(v.Type()) {
		return v
	}
	return nil
}

// checkGuardedAccesses walks a function body flagging selector accesses to
// guarded fields when the guard is not held. Nested function literals get
// their own context: they inherit held guards when invoked or deferred in
// place, and start empty when launched with `go`.
func checkGuardedAccesses(pass *Pass, body ast.Node, guards map[*types.Var]*types.Var, allGuards map[*types.Var]bool, held map[*types.Var]bool, funcName string) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				enterFuncLit(pass, lit, guards, allGuards, nil, funcName)
				for _, arg := range n.Call.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				enterFuncLit(pass, lit, guards, allGuards, held, funcName)
				for _, arg := range n.Call.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				enterFuncLit(pass, lit, guards, allGuards, held, funcName)
				for _, arg := range n.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
		case *ast.FuncLit:
			// not invoked in place: no guard inheritance
			enterFuncLit(pass, n, guards, allGuards, nil, funcName)
			return false
		case *ast.SelectorExpr:
			obj := pass.Info.Uses[n.Sel]
			if sel, ok := pass.Info.Selections[n]; ok {
				obj = sel.Obj()
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return true
			}
			mu, guarded := guards[v]
			if guarded && !held[mu] {
				pass.Reportf(n.Sel.Pos(), "%s accessed without holding %s (in %s)", v.Name(), mu.Name(), funcName)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// enterFuncLit analyzes a function literal body with inherited guards (nil
// for none) plus whatever the literal locks itself.
func enterFuncLit(pass *Pass, lit *ast.FuncLit, guards map[*types.Var]*types.Var, allGuards map[*types.Var]bool, inherited map[*types.Var]bool, funcName string) {
	held := heldGuards(pass, lit.Body, allGuards)
	for mu := range inherited {
		held[mu] = true
	}
	checkGuardedAccesses(pass, lit.Body, guards, allGuards, held, funcName+" (func literal)")
}
