package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Fixture packages live under testdata/src (its own tiny module, so the
// loader resolves them like any other module). Expected findings are marked
// in the fixture source as:
//
//	someExpr // want `regex matched against the diagnostic message`
//
// Every diagnostic must be matched by a want on its line, and every want
// must be matched by a diagnostic — so the fixtures prove both detection
// (positive cases) and suppression/exemption (negative cases stay silent).
var wantRe = regexp.MustCompile("want `([^`]+)`")

// fixtureExpectations scans a fixture directory for want markers, keyed by
// (file base name, line).
func fixtureExpectations(t *testing.T, dir string) map[string][]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[string][]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := keyFor(e.Name(), i+1)
				wants[key] = append(wants[key], m[1])
			}
		}
	}
	return wants
}

func keyFor(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// fixtureLoader is the one Loader every test shares: fixture packages are
// independent, and reusing the loader reuses its (expensive) source-imported
// standard library across cases.
var fixtureLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(filepath.Join("testdata", "src"))
})

// loadFixture loads one type-clean fixture package from testdata/src; every
// test that previously carried its own NewLoader+Load+arity-check block goes
// through here.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	loader, err := fixtureLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	for _, terr := range pkgs[0].TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", dir, terr)
	}
	return pkgs[0]
}

func TestAnalyzers(t *testing.T) {
	root := filepath.Join("testdata", "src")
	cases := []struct {
		name string // analyzer to run
		dir  string // fixture package, relative to testdata/src
	}{
		{"lockcheck", "lockcheck"},
		{"droppederr", "droppederr"},
		{"floateq", "floateq"},
		{"magicatom", "magicatom"},
		{"ctxpropagate", "ctxpropagate"},
		{"ctxpropagate", filepath.Join("internal", "wire")},
		{"rowkernel", "rowkernel"},
		{"rowkernel", filepath.Join("internal", "stencil")},
		{"rowkernel", filepath.Join("internal", "obs")},
		{"poolcheck", "poolcheck"},
		{"lockorder", "lockorder"},
		{"goroutinelife", "goroutinelife"},
		{"atomichygiene", "atomichygiene"},
		{"wirecompat", filepath.Join("internal", "wire", "compat")},
		{"errclass", filepath.Join("internal", "mediator")},
		{"errclass", filepath.Join("internal", "faulttol")},
		{"metrichygiene", "metrichygiene"},
	}
	for _, tc := range cases {
		name := tc.name
		t.Run(name+"/"+filepath.Base(tc.dir), func(t *testing.T) {
			dir := filepath.Join(root, tc.dir)
			pkg := loadFixture(t, tc.dir)
			diags := Analyze(pkg, []*Analyzer{analyzerByName(t, name)})
			wants := fixtureExpectations(t, dir)
			matched := make(map[string]int)
			for _, d := range diags {
				key := keyFor(filepath.Base(d.Pos.Filename), d.Pos.Line)
				exps := wants[key]
				ok := false
				for i, exp := range exps {
					if i < matched[key] {
						continue
					}
					if regexp.MustCompile(exp).MatchString(d.Message) {
						matched[key]++
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
				}
			}
			for key, exps := range wants {
				if matched[key] < len(exps) {
					t.Errorf("missing diagnostic at %s: want %q, matched %d of %d",
						key, exps, matched[key], len(exps))
				}
			}
			if len(diags) == 0 {
				t.Error("fixture produced no diagnostics at all; detection is broken")
			}
		})
	}
}

// TestIgnoreDirective pins the //turbdb:ignore contract: a well-formed
// directive suppresses the finding and carries its mandatory reason into the
// suppressed report; a reasonless directive is itself an active finding and
// suppresses nothing.
func TestIgnoreDirective(t *testing.T) {
	pkg := loadFixture(t, "ignorefix")
	active, suppressed := AnalyzeAll(pkg, []*Analyzer{analyzerByName(t, "floateq")})

	if len(suppressed) != 1 {
		t.Fatalf("suppressed = %v, want exactly one finding", suppressed)
	}
	s := suppressed[0]
	if !s.Suppressed || s.Check != "floateq" {
		t.Errorf("suppressed finding = %+v, want Suppressed floateq", s)
	}
	if want := "exact bit equality intended for dedup keys"; s.SuppressReason != want {
		t.Errorf("SuppressReason = %q, want %q", s.SuppressReason, want)
	}

	if len(active) != 2 {
		t.Fatalf("active = %v, want the malformed directive plus the unsuppressed comparison", active)
	}
	var sawMalformed, sawFloatEq bool
	for _, d := range active {
		switch d.Check {
		case "ignore":
			sawMalformed = true
			if !strings.Contains(d.Message, "missing its mandatory reason") {
				t.Errorf("malformed-directive message = %q", d.Message)
			}
		case "floateq":
			sawFloatEq = true
		}
	}
	if !sawMalformed || !sawFloatEq {
		t.Errorf("active findings %v missing malformed directive or floateq", active)
	}
}

// TestAllowDirectiveScope pins the suppression contract: a directive covers
// its own line and the line directly below, nothing else.
func TestAllowDirectiveScope(t *testing.T) {
	pkg := loadFixture(t, "droppederr")
	allowed := allowedLines(pkg.Fset, pkg.Files)
	lines := allowed["droppederr"]
	if len(lines) == 0 {
		t.Fatal("no droppederr allow directives found in fixture")
	}
	for line := range lines {
		if !lines[line] {
			t.Errorf("line %d marked but not allowed", line)
		}
	}
	if allowed["lockcheck"] != nil {
		t.Error("droppederr directives leaked into lockcheck's allow set")
	}
}

// TestAnalyzeAllTimed pins the timing contract the driver's -timings table
// and -budget gate build on: every analyzer that ran gets a timing entry
// (even a zero-cost one), and the findings are identical to AnalyzeAll's.
func TestAnalyzeAllTimed(t *testing.T) {
	pkg := loadFixture(t, "ignorefix")
	analyzers := Analyzers()
	active, suppressed, timings := AnalyzeAllTimed(pkg, analyzers)
	if len(timings) != len(analyzers) {
		t.Fatalf("timings has %d entries, want one per analyzer (%d)", len(timings), len(analyzers))
	}
	for _, a := range analyzers {
		if d, ok := timings[a.Name]; !ok {
			t.Errorf("no timing recorded for %s", a.Name)
		} else if d < 0 {
			t.Errorf("negative timing for %s: %v", a.Name, d)
		}
	}
	active2, suppressed2 := AnalyzeAll(pkg, analyzers)
	if len(active) != len(active2) || len(suppressed) != len(suppressed2) {
		t.Errorf("timed run found %d/%d findings, untimed %d/%d — they must agree",
			len(active), len(suppressed), len(active2), len(suppressed2))
	}
}
