package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture packages live under testdata/src (its own tiny module, so the
// loader resolves them like any other module). Expected findings are marked
// in the fixture source as:
//
//	someExpr // want `regex matched against the diagnostic message`
//
// Every diagnostic must be matched by a want on its line, and every want
// must be matched by a diagnostic — so the fixtures prove both detection
// (positive cases) and suppression/exemption (negative cases stay silent).
var wantRe = regexp.MustCompile("want `([^`]+)`")

// fixtureExpectations scans a fixture directory for want markers, keyed by
// (file base name, line).
func fixtureExpectations(t *testing.T, dir string) map[string][]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[string][]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := keyFor(e.Name(), i+1)
				wants[key] = append(wants[key], m[1])
			}
		}
	}
	return wants
}

func keyFor(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

func TestAnalyzers(t *testing.T) {
	root := filepath.Join("testdata", "src")
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lockcheck", "droppederr", "floateq", "magicatom"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(root, name)
			pkgs, err := loader.Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			pkg := pkgs[0]
			for _, terr := range pkg.TypeErrors {
				t.Errorf("fixture does not type-check: %v", terr)
			}
			diags := Analyze(pkg, []*Analyzer{analyzerByName(t, name)})
			wants := fixtureExpectations(t, dir)
			matched := make(map[string]int)
			for _, d := range diags {
				key := keyFor(filepath.Base(d.Pos.Filename), d.Pos.Line)
				exps := wants[key]
				ok := false
				for i, exp := range exps {
					if i < matched[key] {
						continue
					}
					if regexp.MustCompile(exp).MatchString(d.Message) {
						matched[key]++
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
				}
			}
			for key, exps := range wants {
				if matched[key] < len(exps) {
					t.Errorf("missing diagnostic at %s: want %q, matched %d of %d",
						key, exps, matched[key], len(exps))
				}
			}
			if len(diags) == 0 {
				t.Error("fixture produced no diagnostics at all; detection is broken")
			}
		})
	}
}

// TestAllowDirectiveScope pins the suppression contract: a directive covers
// its own line and the line directly below, nothing else.
func TestAllowDirectiveScope(t *testing.T) {
	root := filepath.Join("testdata", "src")
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(filepath.Join(root, "droppederr"))
	if err != nil {
		t.Fatal(err)
	}
	allowed := allowedLines(pkgs[0].Fset, pkgs[0].Files)
	lines := allowed["droppederr"]
	if len(lines) == 0 {
		t.Fatal("no droppederr allow directives found in fixture")
	}
	for line := range lines {
		if !lines[line] {
			t.Errorf("line %d marked but not allowed", line)
		}
	}
	if allowed["lockcheck"] != nil {
		t.Error("droppederr directives leaked into lockcheck's allow set")
	}
}
