package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrClass turns PR 2/8's error-classification contract into a compile
// gate. Every error that crosses the distributed path — the wire layer,
// the mediator's fan-out, the node services, the scheduler's admission
// path, and faulttol itself — must know its own retry class, because the
// retry loop, the circuit breaker, and partial-mode degradation all key
// off faulttol.Transient(err): an unclassified error is silently
// classified by heuristics that were never told about it.
//
// In those packages, ErrClass reports:
//
//   - errors.New(...): the error has no class. Construct it with a typed
//     error implementing Transient() or OverQuota() (e.g. the
//     faulttol.Permanent/Permanentf/Transientf constructors).
//   - fmt.Errorf without %w and without an error argument: same problem,
//     formatted.
//   - fmt.Errorf without %w but WITH an error argument (%v/%s): worse —
//     the callee's class existed and this call site just discarded it.
//     Wrap with %w so errors.As finds the marker through the chain.
//
// A construction is exempt when it is nested inside a composite literal
// of a type that implements Transient() bool or OverQuota() bool: that
// is precisely how a classified constructor is built (the faulttol
// constructors wrap fmt.Errorf inside their classified type), including
// when the classified type lives in another package. Test files are
// exempt — tests fabricate errors to provoke the classifier. Anything
// else needs a reasoned //turbdb:ignore errclass.
var ErrClass = &Analyzer{
	Name: "errclass",
	Doc:  "distributed-path errors must carry an explicit retry class (typed, %w-wrapped, or reasoned away)",
	Run:  runErrClass,
}

// errClassPkgs are the distributed-path packages (import-path suffixes)
// whose errors must be classified.
var errClassPkgs = []string{
	"internal/wire",
	"internal/mediator",
	"internal/node",
	"internal/sched",
	"internal/faulttol",
}

func pkgNeedsErrClass(importPath string) bool {
	for _, suffix := range errClassPkgs {
		if strings.HasSuffix(importPath, suffix) || strings.Contains(importPath, suffix+"/") {
			return true
		}
	}
	return false
}

func runErrClass(pass *Pass) {
	if !pkgNeedsErrClass(pass.ImportPath) {
		return
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		checkErrClassFile(pass, file)
	}
}

// isTestFile reports whether the file is a _test.go file (present only
// under -tests).
func isTestFile(pass *Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
}

// checkErrClassFile walks one file keeping an ancestor stack, so a
// construction can be excused by the classified composite literal it is
// nested in.
func checkErrClassFile(pass *Pass, file *ast.File) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		switch {
		case isPkgFunc(fn, "errors", "New"):
			if !insideClassifiedLit(pass, stack) {
				pass.Reportf(call.Pos(), "errors.New creates an unclassified error on the distributed path; use a typed error implementing Transient()/OverQuota() (e.g. faulttol.Permanent)")
			}
		case isPkgFunc(fn, "fmt", "Errorf"):
			format, known := constFormat(pass, call)
			if !known || formatHasWrapVerb(format) {
				return true
			}
			if insideClassifiedLit(pass, stack) {
				return true
			}
			if errArgIdx := firstErrorArg(pass, call); errArgIdx >= 0 {
				pass.Reportf(call.Pos(), "fmt.Errorf reformats an error without %%w, discarding its retry class; wrap it with %%w so errors.As finds the class through the chain")
			} else {
				pass.Reportf(call.Pos(), "fmt.Errorf creates an unclassified error on the distributed path; use a typed error implementing Transient()/OverQuota() (e.g. faulttol.Permanentf) or wrap a classified one with %%w")
			}
		}
		return true
	})
}

// constFormat returns the constant format string of a fmt.Errorf call.
func constFormat(pass *Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatHasWrapVerb reports whether a format string contains a %w verb
// (skipping literal %% escapes).
func formatHasWrapVerb(format string) bool {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		// scan past flags/width to the verb
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.[]", rune(format[j])) {
			j++
		}
		if j < len(format) {
			if format[j] == 'w' {
				return true
			}
			i = j
		}
	}
	return false
}

// firstErrorArg returns the index of the first non-format argument whose
// static type implements error, or -1.
func firstErrorArg(pass *Pass, call *ast.CallExpr) int {
	for i := 1; i < len(call.Args); i++ {
		tv, ok := pass.Info.Types[call.Args[i]]
		if !ok || tv.Type == nil {
			continue
		}
		if types.Implements(tv.Type, errorIface()) || types.Implements(types.NewPointer(tv.Type), errorIface()) {
			return i
		}
	}
	return -1
}

func errorIface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

// insideClassifiedLit reports whether the innermost node of the stack is
// nested inside a composite literal of a classified type — the shape of
// a typed-error constructor's body.
func insideClassifiedLit(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.CompositeLit)
		if !ok {
			continue
		}
		tv, ok := pass.Info.Types[lit]
		if ok && tv.Type != nil && isClassifiedType(pass, tv.Type) {
			return true
		}
	}
	return false
}

// isClassifiedType reports whether t (or *t) has a Transient() bool or
// OverQuota() bool method — the error-classification marker interfaces.
func isClassifiedType(pass *Pass, t types.Type) bool {
	for _, name := range []string{"Transient", "OverQuota"} {
		if hasBoolMethod(pass, t, name) || hasBoolMethod(pass, types.NewPointer(t), name) {
			return true
		}
	}
	return false
}

func hasBoolMethod(pass *Pass, t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Types, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}
