package lint

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// loadFixtureWith loads one fixture package through a fresh, specially
// configured loader; unlike loadFixture it tolerates type errors (package
// broken depends on that) and can include _test.go files. Everything else
// goes through loadFixture's shared loader.
func loadFixtureWith(t *testing.T, includeTests bool, dir string) *Package {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader.IncludeTests = includeTests
	pkgs, err := loader.Load(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

// fileNames returns the base names of a package's parsed files.
func fileNames(pkg *Package) []string {
	var names []string
	for _, f := range pkg.Files {
		names = append(names, filepath.Base(pkg.Fset.Position(f.Pos()).Filename))
	}
	return names
}

// TestLoadExcludesConstrainedFiles checks that files ruled out by build
// constraints (//go:build lines and GOOS name suffixes) never reach the type
// checker: buildtags re-declares the same constant in two excluded files, so
// any leak shows up as a redeclaration error.
func TestLoadExcludesConstrainedFiles(t *testing.T) {
	if runtime.GOOS == "plan9" {
		t.Skip("fixture uses a plan9 GOOS suffix as the excluded file")
	}
	pkg := loadFixture(t, "buildtags")
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("type errors from excluded files leaking in: %v", pkg.TypeErrors)
	}
	names := fileNames(pkg)
	if len(names) != 1 || names[0] != "buildtags.go" {
		t.Fatalf("loaded files = %v, want [buildtags.go]", names)
	}
}

// TestLoadTestOnlyPackage checks both sides of the IncludeTests switch on a
// package whose only file is a _test.go file: a clean error without tests,
// a normal load with them.
func TestLoadTestOnlyPackage(t *testing.T) {
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", "testonly")
	if _, err := loader.Load(dir); err == nil {
		t.Fatal("IncludeTests=false: want an error for a _test.go-only package, got nil")
	} else if !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("IncludeTests=false: error = %q, want mention of missing Go files", err)
	}

	pkg := loadFixtureWith(t, true, "testonly")
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("IncludeTests=true: unexpected type errors: %v", pkg.TypeErrors)
	}
	names := fileNames(pkg)
	if len(names) != 1 || names[0] != "only_test.go" {
		t.Fatalf("IncludeTests=true: loaded files = %v, want [only_test.go]", names)
	}
}

// TestLoadTypeErrorPackage checks that a package that fails type checking
// still loads (TypeErrors populated, no hard error) and that running the
// full analyzer suite over its partial type information does not panic.
func TestLoadTypeErrorPackage(t *testing.T) {
	pkg := loadFixtureWith(t, false, "broken")
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("want TypeErrors for package broken, got none")
	}
	found := false
	for _, e := range pkg.TypeErrors {
		if strings.Contains(e.Error(), "undefinedIdentifier") {
			found = true
		}
	}
	if !found {
		t.Fatalf("TypeErrors = %v, want one mentioning undefinedIdentifier", pkg.TypeErrors)
	}
	// Best-effort analysis over the broken package must not panic.
	active, suppressed := AnalyzeAll(pkg, Analyzers())
	if len(suppressed) != 0 {
		t.Fatalf("unexpected suppressed findings: %v", suppressed)
	}
	_ = active // findings on a broken package are best-effort; only no-panic is contractual
}

// TestLoadTestMetricsExempt pins the metrichygiene exemption for metrics
// declared in _test.go files: loading the fixture WITH tests included
// (its metrics_test.go registers a scratch counter whose name breaks
// every rule) must add no findings over the testless run.
func TestLoadTestMetricsExempt(t *testing.T) {
	pkg := loadFixtureWith(t, true, "metrichygiene")
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture does not type-check with tests: %v", terr)
	}
	diags := Analyze(pkg, []*Analyzer{MetricHygiene})
	if len(diags) == 0 {
		t.Fatal("fixture produced no metrichygiene findings at all; detection is broken")
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "bad_test_only_name") {
			t.Errorf("scratch metric from metrics_test.go was not exempt: %s", d)
		}
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			t.Errorf("finding in a test file: %s", d)
		}
	}
}

// TestResolveDirsCoversCmd pins the analyzer run set: resolving ./...
// from the real module root must include every cmd/ package alongside
// internal/, and never a testdata directory — so the check.sh/CI
// invocation `turbdb-vet ./...` sweeps the command-line tools too.
func TestResolveDirsCoversCmd(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.resolveDirs("./...")
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(loader.ModuleRoot, dir)
		if err != nil {
			t.Fatal(err)
		}
		rel = filepath.ToSlash(rel)
		if strings.Contains(rel, "testdata") {
			t.Errorf("resolveDirs included a testdata directory: %s", rel)
		}
		got[rel] = true
	}
	for _, want := range []string{
		"cmd/turbdb-server", "cmd/turbdb-mediator", "cmd/turbdb-query",
		"cmd/turbdb-bench", "cmd/turbdb-gen", "cmd/turbdb-vet",
		"internal/wire", "internal/lint",
	} {
		if !got[want] {
			t.Errorf("resolveDirs(./...) is missing %s", want)
		}
	}
}
