package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/turbdb/turbdb/internal/faulttol"
	"github.com/turbdb/turbdb/internal/morton"
	"github.com/turbdb/turbdb/internal/sim"
)

func TestRuleCounting(t *testing.T) {
	p := NewPlan(1, &Rule{Match: "/a", After: 1, Count: 2})
	fires := []bool{}
	for i := 0; i < 5; i++ {
		r, _ := p.evaluate("/a")
		fires = append(fires, r != nil)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("call %d fired=%v, want %v (all: %v)", i, fires[i], want[i], fires)
		}
	}
	if r, _ := p.evaluate("/other"); r != nil {
		t.Error("rule fired on a non-matching key")
	}
	if p.Fired() != 2 {
		t.Errorf("Fired() = %d, want 2", p.Fired())
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	seq := func(seed int64) []bool {
		p := NewPlan(seed, &Rule{Prob: 0.5})
		out := make([]bool, 32)
		for i := range out {
			r, _ := p.evaluate("k")
			out[i] = r != nil
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("prob 0.5 fired %d/%d times", fired, len(a))
	}
}

func TestInjectedErrorIsTransient(t *testing.T) {
	err := error(&InjectedError{Key: "/v1/threshold", Call: 3})
	if !faulttol.Transient(err) {
		t.Error("injected error must classify transient")
	}
	if !strings.Contains(err.Error(), "/v1/threshold") {
		t.Errorf("error message lost the key: %v", err)
	}
}

func TestTransportModes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, `{"ok":true,"pad":"0123456789012345678901234567890123456789"}`)
	}))
	defer srv.Close()

	get := func(plan *Plan, path string, ctx context.Context) (*http.Response, error) {
		c := &http.Client{Transport: NewTransport(nil, plan)}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		return c.Do(req)
	}

	t.Run("error", func(t *testing.T) {
		plan := NewPlan(1, &Rule{Match: "/q", Mode: ModeError})
		if _, err := get(plan, "/q", context.Background()); err == nil {
			t.Fatal("fault not injected")
		} else if !faulttol.Transient(err) {
			t.Errorf("transport error not transient through url.Error: %v", err)
		}
		resp, err := get(plan, "/other", context.Background())
		if err != nil {
			t.Fatalf("non-matching path failed: %v", err)
		}
		defer resp.Body.Close() //lint:allow droppederr response-body close is best-effort
	})

	t.Run("status", func(t *testing.T) {
		plan := NewPlan(1, &Rule{Mode: ModeStatus, Status: 503})
		resp, err := get(plan, "/q", context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close() //lint:allow droppederr response-body close is best-effort
		if resp.StatusCode != 503 {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})

	t.Run("partial", func(t *testing.T) {
		plan := NewPlan(1, &Rule{Mode: ModePartial, TruncateTo: 5})
		resp, err := get(plan, "/q", context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close() //lint:allow droppederr response-body close is best-effort
		data, err := io.ReadAll(resp.Body)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("read err = %v, want unexpected EOF", err)
		}
		if len(data) > 5 {
			t.Errorf("read %d bytes past the cut", len(data))
		}
	})

	t.Run("hang", func(t *testing.T) {
		plan := NewPlan(1, &Rule{Mode: ModeHang})
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		if _, err := get(plan, "/q", ctx); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("hang err = %v, want deadline exceeded", err)
		}
	})
}

// memFetcher returns one byte per requested code.
type memFetcher struct{ calls int }

func (m *memFetcher) FetchAtoms(_ context.Context, _ *sim.Proc, _ string, _ int, codes []morton.Code) (map[morton.Code][]byte, error) {
	m.calls++
	out := make(map[morton.Code][]byte, len(codes))
	for _, c := range codes {
		out[c] = []byte{byte(c)}
	}
	return out, nil
}

func TestPeerFetcherModes(t *testing.T) {
	codes := []morton.Code{3, 1, 2}

	t.Run("error", func(t *testing.T) {
		f := NewPeerFetcher(&memFetcher{}, NewPlan(1, &Rule{Match: "velocity", Mode: ModeError}))
		if _, err := f.FetchAtoms(context.Background(), nil, "velocity", 0, codes); err == nil {
			t.Fatal("fault not injected")
		}
		if out, err := f.FetchAtoms(context.Background(), nil, "pressure", 0, codes); err != nil || len(out) != 3 {
			t.Errorf("non-matching field: out=%v err=%v", out, err)
		}
	})

	t.Run("partial keeps lowest codes deterministically", func(t *testing.T) {
		f := NewPeerFetcher(&memFetcher{}, NewPlan(1, &Rule{Mode: ModePartial, TruncateTo: 2}))
		out, err := f.FetchAtoms(context.Background(), nil, "velocity", 0, codes)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 {
			t.Fatalf("kept %d atoms, want 2", len(out))
		}
		if _, ok := out[morton.Code(1)]; !ok {
			t.Error("lowest code dropped")
		}
		if _, ok := out[morton.Code(3)]; ok {
			t.Error("highest code kept")
		}
	})

	t.Run("hang honors ctx", func(t *testing.T) {
		f := NewPeerFetcher(&memFetcher{}, NewPlan(1, &Rule{Mode: ModeHang}))
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		if _, err := f.FetchAtoms(ctx, nil, "velocity", 0, codes); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("err = %v, want deadline exceeded", err)
		}
	})
}
