package faultinject

import (
	"context"
	"errors"
	"testing"

	"github.com/turbdb/turbdb/internal/node"
	"github.com/turbdb/turbdb/internal/query"
	"github.com/turbdb/turbdb/internal/sim"
)

// stubNode counts the calls that actually reach the (pretend) node.
type stubNode struct{ threshold, pdf, topk, mgmt int }

func (s *stubNode) GetThreshold(ctx context.Context, p *sim.Proc, q query.Threshold) (*node.ThresholdResult, error) {
	s.threshold++
	return &node.ThresholdResult{}, nil
}

func (s *stubNode) GetPDF(ctx context.Context, p *sim.Proc, q query.PDF) (*node.PDFResult, error) {
	s.pdf++
	return &node.PDFResult{}, nil
}

func (s *stubNode) GetTopK(ctx context.Context, p *sim.Proc, q query.TopK) (*node.TopKResult, error) {
	s.topk++
	return &node.TopKResult{}, nil
}

func (s *stubNode) DropCacheEntry(ctx context.Context, fieldName string, order, step int) error {
	s.mgmt++
	return nil
}

func (s *stubNode) SetProcesses(ctx context.Context, p int) error { s.mgmt++; return nil }

func (s *stubNode) Describe(ctx context.Context) (node.Description, error) {
	s.mgmt++
	return node.Description{}, nil
}

func TestKillPrimaryDownsNodeForGood(t *testing.T) {
	st := &stubNode{}
	c := WrapNode(st, NewPlan(1, KillPrimary(2, 2)), 2)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.GetThreshold(ctx, nil, query.Threshold{}); err != nil {
			t.Fatalf("call %d failed before the kill point: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		_, err := c.GetTopK(ctx, nil, query.TopK{})
		var inj *InjectedError
		if !errors.As(err, &inj) {
			t.Fatalf("call %d after kill: err = %v, want InjectedError", i, err)
		}
	}
	if st.threshold != 2 || st.topk != 0 {
		t.Errorf("node saw %d threshold + %d topk calls, want 2 + 0", st.threshold, st.topk)
	}
}

func TestKillPrimaryLeavesOtherNodesAlone(t *testing.T) {
	plan := NewPlan(1, KillPrimary(2, 0))
	st1, st2 := &stubNode{}, &stubNode{}
	c1, c2 := WrapNode(st1, plan, 1), WrapNode(st2, plan, 2)
	ctx := context.Background()
	if _, err := c1.GetThreshold(ctx, nil, query.Threshold{}); err != nil {
		t.Fatalf("node 1 was killed by node 2's rule: %v", err)
	}
	if _, err := c2.GetThreshold(ctx, nil, query.Threshold{}); err == nil {
		t.Fatal("node 2 survived its own kill rule")
	}
	// Management traffic is never injected: assembly Describe and cache
	// drops must work even on a "dead" node.
	if err := c2.DropCacheEntry(ctx, "f", 8, 0); err != nil {
		t.Fatalf("management call tripped a rule: %v", err)
	}
}

func TestFlapIsSeededAndDeterministic(t *testing.T) {
	sequence := func(seed int64) []bool {
		st := &stubNode{}
		c := WrapNode(st, NewPlan(seed, Flap(0, 0.5)), 0)
		out := make([]bool, 40)
		for i := range out {
			_, err := c.GetPDF(context.Background(), nil, query.PDF{})
			out[i] = err != nil
		}
		return out
	}
	a, b := sequence(7), sequence(7)
	ups, downs := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			downs++
		} else {
			ups++
		}
	}
	if ups == 0 || downs == 0 {
		t.Fatalf("flap at p=0.5 over 40 calls gave %d ups / %d downs, want both > 0", ups, downs)
	}
	c := sequence(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the same flap sequence")
	}
}

func TestDelayedRejoinRecovers(t *testing.T) {
	st := &stubNode{}
	c := WrapNode(st, NewPlan(1, DelayedRejoin(0, 3)), 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.GetThreshold(ctx, nil, query.Threshold{}); err == nil {
			t.Fatalf("call %d succeeded while the node was down", i)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := c.GetThreshold(ctx, nil, query.Threshold{}); err != nil {
			t.Fatalf("call %d after rejoin failed: %v", i, err)
		}
	}
	if st.threshold != 4 {
		t.Errorf("node served %d calls, want 4", st.threshold)
	}
}
