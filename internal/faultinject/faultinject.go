// Package faultinject provides deterministic fault injection for chaos
// tests of the distributed query path: an http.RoundTripper wrapper that
// fails, delays, hangs, truncates or rewrites responses, and a
// node.PeerFetcher wrapper that drops halo atoms or fails fetches.
//
// Faults are described by Rules collected in a Plan. A rule triggers by
// call count (fire starting with the After-th matching call, for Count
// calls) and optionally by probability drawn from a seeded source, so a
// given (plan, seed, call sequence) always injects the same faults —
// chaos tests stay reproducible.
//
// Injected errors implement the faulttol Transient marker (they model
// availability faults), so retry policies and circuit breakers exercise
// their real production paths.
package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/turbdb/turbdb/internal/morton"
	"github.com/turbdb/turbdb/internal/node"
	"github.com/turbdb/turbdb/internal/sim"
)

// Mode selects what a triggered rule does to the call.
type Mode int

const (
	// ModeError fails the call with an *InjectedError (transient).
	ModeError Mode = iota
	// ModeDelay sleeps Rule.Delay (honoring ctx) and then forwards.
	ModeDelay
	// ModeHang blocks until the caller's context is done and returns its
	// error — a dead peer that never answers.
	ModeHang
	// ModePartial forwards the call but truncates the response: an HTTP
	// body is cut after Rule.TruncateTo bytes (ending in
	// io.ErrUnexpectedEOF), a peer fetch keeps only Rule.TruncateTo atoms.
	ModePartial
	// ModeStatus short-circuits an HTTP call with a synthetic response
	// carrying Rule.Status (peer fetches treat it as ModeError).
	ModeStatus
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeDelay:
		return "delay"
	case ModeHang:
		return "hang"
	case ModePartial:
		return "partial"
	case ModeStatus:
		return "status"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// InjectedError is the failure ModeError produces. It classifies as
// transient so the fault-tolerance stack treats it like a real
// availability fault.
type InjectedError struct {
	// Key is the call key the rule matched (URL path or raw-field name).
	Key string
	// Call is the 0-based index of the matching call that triggered.
	Call int
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected fault on %q (call %d)", e.Key, e.Call)
}

// Transient marks injected faults as retryable availability errors.
func (e *InjectedError) Transient() bool { return true }

// Rule describes one fault. The zero value fires ModeError on every call.
type Rule struct {
	// Match is a substring of the call key (URL path for HTTP, raw-field
	// name for peer fetches); empty matches every call.
	Match string
	// After skips the first After matching calls (0 = fire immediately).
	After int
	// Count limits how many calls fire (0 = every call from After on).
	Count int
	// Prob fires probabilistically (from the plan's seeded source);
	// 0 means always fire. Counted calls that lose the draw still consume
	// their call index, keeping sequences reproducible per seed.
	Prob float64

	Mode Mode
	// Err overrides the injected error for ModeError (default
	// *InjectedError).
	Err error
	// Delay is the ModeDelay duration.
	Delay time.Duration
	// TruncateTo is the ModePartial budget: body bytes for HTTP, atom
	// count for peer fetches.
	TruncateTo int
	// Status is the synthetic HTTP status for ModeStatus.
	Status int

	seen int // matching calls observed; Plan.mu protects it
}

// Plan is a shared, concurrency-safe set of fault rules with one seeded
// randomness source. The same Plan may back several transports and peer
// fetchers; counts are per rule across all of them.
type Plan struct {
	//turbdb:lockrank faultinject.plan 70
	mu    sync.Mutex
	rules []*Rule
	rng   *rand.Rand
	fired int
}

// NewPlan builds a plan over rules with a deterministic source for
// probabilistic rules.
func NewPlan(seed int64, rules ...*Rule) *Plan {
	return &Plan{rules: rules, rng: rand.New(rand.NewSource(seed))}
}

// Fired reports how many faults the plan has injected so far.
func (p *Plan) Fired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// evaluate registers one call with key and returns the first rule that
// triggers for it, or nil.
func (p *Plan) evaluate(key string) (*Rule, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var hit *Rule
	call := -1
	for _, r := range p.rules {
		if r.Match != "" && !strings.Contains(key, r.Match) {
			continue
		}
		n := r.seen
		r.seen++
		if hit != nil {
			continue // count the call for every matching rule, fire the first
		}
		if n < r.After {
			continue
		}
		if r.Count > 0 && n >= r.After+r.Count {
			continue
		}
		if r.Prob > 0 && p.rng.Float64() >= r.Prob {
			continue
		}
		hit = r
		call = n
	}
	if hit != nil {
		p.fired++
	}
	return hit, call
}

func (r *Rule) injectedErr(key string, call int) error {
	if r.Err != nil {
		return r.Err
	}
	return &InjectedError{Key: key, Call: call}
}

// sleepCtx waits for d or the context, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Transport is a fault-injecting http.RoundTripper.
type Transport struct {
	next http.RoundTripper
	plan *Plan
}

// NewTransport wraps next (nil = http.DefaultTransport) with plan.
func NewTransport(next http.RoundTripper, plan *Plan) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{next: next, plan: plan}
}

// RoundTrip implements http.RoundTripper. The call key is the URL path.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	rule, call := t.plan.evaluate(req.URL.Path)
	if rule == nil {
		return t.next.RoundTrip(req)
	}
	switch rule.Mode {
	case ModeError:
		return nil, rule.injectedErr(req.URL.Path, call)
	case ModeDelay:
		if err := sleepCtx(req.Context(), rule.Delay); err != nil {
			return nil, err
		}
		return t.next.RoundTrip(req)
	case ModeHang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case ModeStatus:
		status := rule.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		body := fmt.Sprintf(`{"error":"faultinject: synthetic %d"}`, status)
		return &http.Response{
			StatusCode: status,
			Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(bytes.NewReader([]byte(body))),
			Request:    req,
		}, nil
	case ModePartial:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatingBody{r: resp.Body, remaining: rule.TruncateTo}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return t.next.RoundTrip(req)
}

// truncatingBody delivers at most remaining bytes, then fails with
// io.ErrUnexpectedEOF — a connection cut mid-response.
type truncatingBody struct {
	r         io.ReadCloser
	remaining int
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.r.Read(p)
	b.remaining -= n
	if err == io.EOF && b.remaining <= 0 {
		// The real body ended exactly at the cut; still report the cut so
		// decoders fail rather than accept a short payload silently.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatingBody) Close() error { return b.r.Close() }

// PeerFetcher wraps a node.PeerFetcher with fault injection. The call key
// is the raw-field name.
type PeerFetcher struct {
	next node.PeerFetcher
	plan *Plan
}

// NewPeerFetcher wraps next with plan.
func NewPeerFetcher(next node.PeerFetcher, plan *Plan) *PeerFetcher {
	return &PeerFetcher{next: next, plan: plan}
}

// FetchAtoms implements node.PeerFetcher.
func (f *PeerFetcher) FetchAtoms(ctx context.Context, p *sim.Proc, rawField string, step int, codes []morton.Code) (map[morton.Code][]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rule, call := f.plan.evaluate(rawField)
	if rule == nil {
		return f.next.FetchAtoms(ctx, p, rawField, step, codes)
	}
	switch rule.Mode {
	case ModeError, ModeStatus:
		return nil, rule.injectedErr(rawField, call)
	case ModeDelay:
		if err := sleepCtx(ctx, rule.Delay); err != nil {
			return nil, err
		}
		return f.next.FetchAtoms(ctx, p, rawField, step, codes)
	case ModeHang:
		<-ctx.Done()
		return nil, ctx.Err()
	case ModePartial:
		m, err := f.next.FetchAtoms(ctx, p, rawField, step, codes)
		if err != nil {
			return nil, err
		}
		if len(m) <= rule.TruncateTo {
			return m, nil
		}
		kept := make([]morton.Code, 0, len(m))
		for c := range m {
			kept = append(kept, c)
		}
		sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
		out := make(map[morton.Code][]byte, rule.TruncateTo)
		for _, c := range kept[:rule.TruncateTo] {
			out[c] = m[c]
		}
		return out, nil
	}
	return f.next.FetchAtoms(ctx, p, rawField, step, codes)
}
