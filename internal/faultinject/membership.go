package faultinject

// Membership-aware fault actions: the node-level failure scenarios the
// replicated cluster must absorb. A NodeClient wraps one node's client so
// a plan can kill, flap or temporarily down it; the rule constructors
// below name the scenarios the failover chaos suites run. All scheduling
// is per-call and counted under the plan's seeded source, so a scenario
// replays identically for a given seed.

import (
	"context"
	"fmt"

	"github.com/turbdb/turbdb/internal/mediator"
	"github.com/turbdb/turbdb/internal/node"
	"github.com/turbdb/turbdb/internal/query"
	"github.com/turbdb/turbdb/internal/sim"
)

// NodeClient is a fault-injecting mediator.NodeClient. Query calls are
// registered with the plan under keys "node<id>/threshold", "node<id>/pdf"
// and "node<id>/topk"; management calls (DropCacheEntry, SetProcesses,
// Describe) pass through untouched so cluster assembly never trips a rule.
type NodeClient struct {
	mediator.NodeClient
	plan *Plan
	id   int
}

// WrapNode wraps a node client with the plan's fault rules.
func WrapNode(next mediator.NodeClient, plan *Plan, id int) *NodeClient {
	return &NodeClient{NodeClient: next, plan: plan, id: id}
}

// apply registers one query call and enacts the first matching rule. A
// query has no byte stream to truncate, so every error-like mode
// (ModeError, ModePartial, ModeStatus) fails the call with the injected
// error; ModeDelay stalls it and ModeHang parks it on the context.
func (c *NodeClient) apply(ctx context.Context, op string) error {
	key := fmt.Sprintf("node%d/%s", c.id, op)
	r, call := c.plan.evaluate(key)
	if r == nil {
		return nil
	}
	switch r.Mode {
	case ModeDelay:
		return sleepCtx(ctx, r.Delay)
	case ModeHang:
		<-ctx.Done()
		return ctx.Err()
	default:
		return r.injectedErr(key, call)
	}
}

// GetThreshold implements mediator.NodeClient.
func (c *NodeClient) GetThreshold(ctx context.Context, p *sim.Proc, q query.Threshold) (*node.ThresholdResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := c.apply(ctx, "threshold"); err != nil {
		return nil, err
	}
	return c.NodeClient.GetThreshold(ctx, p, q)
}

// GetThresholdBatch implements mediator.BatchNodeClient: a shared-scan
// batch counts as one "threshold" call against the plan, so kill/flap rules
// hit batches and solo queries alike. A wrapped client without batch
// support is served member-by-member, keeping the wrapper usable over the
// test stubs.
func (c *NodeClient) GetThresholdBatch(ctx context.Context, p *sim.Proc, qs []query.Threshold) (*node.ThresholdBatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := c.apply(ctx, "threshold"); err != nil {
		return nil, err
	}
	if bc, ok := c.NodeClient.(mediator.BatchNodeClient); ok {
		return bc.GetThresholdBatch(ctx, p, qs)
	}
	return mediator.SequentialThresholdBatch(ctx, c.NodeClient, p, qs)
}

// GetPDF implements mediator.NodeClient.
func (c *NodeClient) GetPDF(ctx context.Context, p *sim.Proc, q query.PDF) (*node.PDFResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := c.apply(ctx, "pdf"); err != nil {
		return nil, err
	}
	return c.NodeClient.GetPDF(ctx, p, q)
}

// GetTopK implements mediator.NodeClient.
func (c *NodeClient) GetTopK(ctx context.Context, p *sim.Proc, q query.TopK) (*node.TopKResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := c.apply(ctx, "topk"); err != nil {
		return nil, err
	}
	return c.NodeClient.GetTopK(ctx, p, q)
}

// nodeKey is the rule match for every query op of one node.
func nodeKey(id int) string { return fmt.Sprintf("node%d/", id) }

// KillPrimary downs node id for good once `after` of its query calls have
// completed — the kill-the-primary-mid-workload scenario. The mediator
// must re-route the node's ranges to replicas and keep Coverage == 1.
func KillPrimary(id, after int) *Rule {
	return &Rule{Match: nodeKey(id), After: after}
}

// Flap fails each of node id's query calls with probability prob from the
// plan's seeded source — a flaky link or an overloaded node. The same
// seed replays the same up/down sequence.
func Flap(id int, prob float64) *Rule {
	return &Rule{Match: nodeKey(id), Prob: prob}
}

// DelayedRejoin downs node id for its next `down` query calls and then
// lets it serve again — a crash with a slow restart. Routing should fail
// over while it is gone and may use it again once it is back.
func DelayedRejoin(id, down int) *Rule {
	return &Rule{Match: nodeKey(id), Count: down}
}
