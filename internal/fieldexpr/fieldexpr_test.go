package fieldexpr

import (
	"math"
	"strings"
	"testing"

	"github.com/turbdb/turbdb/internal/field"
	"github.com/turbdb/turbdb/internal/grid"
	"github.com/turbdb/turbdb/internal/stencil"
)

var testRaws = map[string]int{"velocity": 3, "pressure": 1, "magnetic": 3}

// abcBlock builds a periodic halo-extended block of the ABC (Beltrami) flow
// — a field whose curl equals itself, giving exact analytic checks.
func abcBlock(n, halo int, dx float64) *field.Block {
	A, B, C := 1.1, 0.7, 0.4
	bl := field.NewBlock(grid.Box{
		Lo: grid.Point{X: -halo, Y: -halo, Z: -halo},
		Hi: grid.Point{X: n + halo, Y: n + halo, Z: n + halo},
	}, 3)
	bl.Fill(func(p grid.Point, vals []float64) {
		x, y, z := float64(p.X)*dx, float64(p.Y)*dx, float64(p.Z)*dx
		vals[0] = A*math.Sin(z) + C*math.Cos(y)
		vals[1] = B*math.Sin(x) + A*math.Cos(z)
		vals[2] = C*math.Sin(y) + B*math.Cos(x)
	})
	return bl
}

// scalarBlock builds sin(x)·cos(2y)·sin(z) with halo.
func scalarBlock(n, halo int, dx float64) *field.Block {
	bl := field.NewBlock(grid.Box{
		Lo: grid.Point{X: -halo, Y: -halo, Z: -halo},
		Hi: grid.Point{X: n + halo, Y: n + halo, Z: n + halo},
	}, 1)
	bl.Fill(func(p grid.Point, vals []float64) {
		x, y, z := float64(p.X)*dx, float64(p.Y)*dx, float64(p.Z)*dx
		vals[0] = math.Sin(x) * math.Cos(2*y) * math.Sin(z)
	})
	return bl
}

func compileOK(t *testing.T, src string) interface {
	HalfWidth(order int) (int, error)
} {
	t.Helper()
	f, err := Compile("t", src, testRaws)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return f
}

func TestCompileErrors(t *testing.T) {
	bad := []struct {
		src, wantSub string
	}{
		{"", "unexpected"},
		{"curl(pressure)", "vector"},
		{"grad(grad(velocity))", "scalar or vector"},
		{"div(pressure)", "vector"},
		{"trace(velocity)", "tensor"},
		{"velocity + pressure", "matching components"},
		{"velocity * magnetic", "scalar operand"},
		{"velocity / velocity", "scalar divisor"},
		{"cross(pressure, velocity)", "two vectors"},
		{"unknownfield", "unknown field"},
		{"frob(velocity)", "unknown function"},
		{"curl(velocity", `")"`},
		{"curl(velocity))", "trailing"},
		{"dot(velocity)", "2 arguments"},
		{"curl(velocity, velocity)", "1 argument"},
		{"comp(velocity, 5)", "out of range"},
		{"comp(velocity, pressure)", "literal"},
		{"3.5", "references no stored field"},
		{"curl(curl(curl(curl(velocity))))", "exceed"},
		{"velocity @", "unexpected character"},
	}
	for _, c := range bad {
		_, err := Compile("t", c.src, testRaws)
		if err == nil {
			t.Errorf("Compile(%q) accepted", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Compile(%q) error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
	if _, err := Compile("", "curl(velocity)", testRaws); err == nil {
		t.Error("empty name accepted")
	}
}

func TestHalfWidthScalesWithDepth(t *testing.T) {
	cases := []struct {
		src   string
		depth int
	}{
		{"velocity", 0},
		{"norm(velocity)", 0},
		{"curl(velocity)", 1},
		{"norm(grad(pressure))", 1},
		{"div(grad(pressure))", 2},
		{"curl(curl(velocity))", 2},
		{"norm(grad(norm(curl(velocity))))", 2},
	}
	for _, c := range cases {
		f, err := Compile("t", c.src, testRaws)
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.src, err)
		}
		for _, order := range []int{2, 4, 8} {
			hw, err := f.HalfWidth(order)
			if err != nil {
				t.Fatal(err)
			}
			if hw != c.depth*order/2 {
				t.Errorf("%q at order %d: half-width %d, want %d", c.src, order, hw, c.depth*order/2)
			}
		}
		if (f.NeedsStencil && c.depth == 0) || (!f.NeedsStencil && c.depth > 0) {
			t.Errorf("%q: NeedsStencil = %v at depth %d", c.src, f.NeedsStencil, c.depth)
		}
	}
}

// curl(velocity) compiled from the expression must agree with the ABC
// analytic identity ∇×u = u.
func TestCurlExpressionOnABCFlow(t *testing.T) {
	n := 64
	dx := 2 * math.Pi / float64(n)
	st := stencil.MustGet(8)
	bl := abcBlock(n, st.HalfWidth, dx)
	f, err := Compile("w", "curl(velocity)", testRaws)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	for _, p := range []grid.Point{{X: 5, Y: 9, Z: 31}, {X: 0, Y: 63, Z: 2}} {
		f.Eval(st, []*field.Block{bl}, p, dx, out)
		for c := 0; c < 3; c++ {
			if math.Abs(out[c]-bl.At(p, c)) > 1e-3 {
				t.Errorf("curl at %v comp %d = %g, want %g", p, c, out[c], bl.At(p, c))
			}
		}
	}
}

// The Lamb vector u×(∇×u) of a Beltrami flow is identically zero (u ∥ ∇×u).
func TestLambVectorOfBeltramiIsZero(t *testing.T) {
	n := 64
	dx := 2 * math.Pi / float64(n)
	st := stencil.MustGet(8)
	bl := abcBlock(n, st.HalfWidth, dx)
	f, err := Compile("lamb", "cross(velocity, curl(velocity))", testRaws)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	p := grid.Point{X: 17, Y: 40, Z: 8}
	f.Eval(st, []*field.Block{bl}, p, dx, out)
	for c := 0; c < 3; c++ {
		if math.Abs(out[c]) > 1e-3 {
			t.Errorf("lamb vector comp %d = %g, want ≈0", c, out[c])
		}
	}
}

// div(grad(p)) must equal the analytic Laplacian — a genuinely nested
// differential operator exercising the widened halo.
func TestLaplacianByComposition(t *testing.T) {
	n := 64
	dx := 2 * math.Pi / float64(n)
	st := stencil.MustGet(8)
	f, err := Compile("lap", "div(grad(pressure))", testRaws)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := f.HalfWidth(8)
	if err != nil {
		t.Fatal(err)
	}
	if hw != 8 {
		t.Fatalf("laplacian half-width %d, want 8 (2 levels × 4)", hw)
	}
	bl := scalarBlock(n, hw, dx)
	out := make([]float64, 1)
	p := grid.Point{X: 13, Y: 27, Z: 44}
	f.Eval(st, []*field.Block{bl}, p, dx, out)
	// ∇²[sin x · cos 2y · sin z] = −(1+4+1)·f = −6f
	want := -6 * bl.At(p, 0)
	if math.Abs(out[0]-want) > 2e-2 {
		t.Errorf("laplacian = %g, want %g", out[0], want)
	}
}

// qcrit(grad(velocity)) from the expression equals the built-in field.
func TestQCritExpressionMatchesBuiltin(t *testing.T) {
	n := 32
	dx := 2 * math.Pi / float64(n)
	st := stencil.MustGet(4)
	bl := abcBlock(n, st.HalfWidth, dx)
	f, err := Compile("q", "qcrit(grad(velocity))", testRaws)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 1)
	p := grid.Point{X: 7, Y: 21, Z: 3}
	f.Eval(st, []*field.Block{bl}, p, dx, out)
	// reference via stencil.Gradient
	g := st.Gradient(bl, p, dx)
	var m [3][3]float64 = g
	// Q = ½(‖Ω‖² − ‖S‖²)
	var s2, o2 float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.5 * (m[i][j] + m[j][i])
			o := 0.5 * (m[i][j] - m[j][i])
			s2 += s * s
			o2 += o * o
		}
	}
	want := 0.5 * (o2 - s2)
	if math.Abs(out[0]-want) > 1e-9 {
		t.Errorf("qcrit = %g, want %g", out[0], want)
	}
}

// Arithmetic: 2*pressure - pressure == abs on sign-flipped field etc.
func TestArithmetic(t *testing.T) {
	n := 8
	dx := 0.5
	st := stencil.MustGet(2)
	bl := scalarBlock(n, 1, dx)
	p := grid.Point{X: 3, Y: 4, Z: 5}
	v := bl.At(p, 0)

	cases := []struct {
		src  string
		want float64
	}{
		{"2*pressure - pressure", v},
		{"pressure/2 + pressure/2", v},
		{"-pressure", -v},
		{"abs(-3*pressure)", math.Abs(3 * v)},
		{"(pressure + 1) - 1", v},
		{"norm(pressure)", math.Abs(v)},
		{"dot(pressure, pressure)", v * v},
		{"comp(grad(pressure), 1)", derivRef(bl, p, dx, st)},
	}
	out := make([]float64, 1)
	for _, c := range cases {
		f, err := Compile("t", c.src, testRaws)
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.src, err)
		}
		f.Eval(st, []*field.Block{bl}, p, dx, out)
		if math.Abs(out[0]-c.want) > 1e-9 {
			t.Errorf("%q = %g, want %g", c.src, out[0], c.want)
		}
	}
}

// derivRef computes ∂p/∂y with the stencil directly.
func derivRef(bl *field.Block, p grid.Point, dx float64, st stencil.Stencil) float64 {
	return st.Deriv(bl, p, 0, stencil.AxisY, dx)
}

func TestTensorOps(t *testing.T) {
	n := 16
	dx := 2 * math.Pi / float64(n)
	st := stencil.MustGet(2)
	bl := abcBlock(n, st.HalfWidth, dx)
	p := grid.Point{X: 4, Y: 9, Z: 2}

	// trace(grad(u)) = div(u) = 0 for the incompressible ABC flow
	f, _ := Compile("t", "trace(grad(velocity))", testRaws)
	out := make([]float64, 9)
	f.Eval(st, []*field.Block{bl}, p, dx, out)
	if math.Abs(out[0]) > 1e-9 {
		t.Errorf("trace(grad(u)) = %g, want 0", out[0])
	}
	// sym + antisym must reconstruct grad
	fs, _ := Compile("s", "sym(grad(velocity)) + antisym(grad(velocity))", testRaws)
	fg, _ := Compile("g", "grad(velocity)", testRaws)
	sum := make([]float64, 9)
	gr := make([]float64, 9)
	fs.Eval(st, []*field.Block{bl}, p, dx, sum)
	fg.Eval(st, []*field.Block{bl}, p, dx, gr)
	for c := 0; c < 9; c++ {
		if math.Abs(sum[c]-gr[c]) > 1e-12 {
			t.Errorf("sym+antisym comp %d = %g, want %g", c, sum[c], gr[c])
		}
	}
	// det and rinv: rinv = -det
	fd, _ := Compile("d", "det(grad(velocity))", testRaws)
	fr, _ := Compile("r", "rinv(grad(velocity))", testRaws)
	d := make([]float64, 1)
	r := make([]float64, 1)
	fd.Eval(st, []*field.Block{bl}, p, dx, d)
	fr.Eval(st, []*field.Block{bl}, p, dx, r)
	if math.Abs(d[0]+r[0]) > 1e-12 {
		t.Errorf("rinv %g != -det %g", r[0], d[0])
	}
}

func TestNumbersAndWhitespace(t *testing.T) {
	f, err := Compile("t", "  1.5e1 * pressure \n+ 2 * pressure ", testRaws)
	if err != nil {
		t.Fatal(err)
	}
	bl := scalarBlock(8, 0, 1)
	st := stencil.MustGet(2)
	out := make([]float64, 1)
	p := grid.Point{X: 1, Y: 2, Z: 3}
	f.Eval(st, []*field.Block{bl}, p, 1, out)
	want := 17 * bl.At(p, 0)
	if math.Abs(out[0]-want) > 1e-9 {
		t.Errorf("got %g, want %g", out[0], want)
	}
}

func BenchmarkCompiledVorticity(b *testing.B) {
	st := stencil.MustGet(4)
	bl := abcBlock(16, st.HalfWidth, 0.1)
	f, err := Compile("w", "norm(curl(velocity))", testRaws)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, 1)
	p := grid.Point{X: 8, Y: 8, Z: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Eval(st, []*field.Block{bl}, p, 0.1, out)
	}
}

// Cross-field expressions: dot(velocity, magnetic) must see both blocks in
// sorted-name order (magnetic before velocity).
func TestMultiFieldExpression(t *testing.T) {
	st := stencil.MustGet(2)
	dx := 0.3
	vel := abcBlock(8, st.HalfWidth, dx)
	mag := scalarToVec(scalarBlock(8, st.HalfWidth, dx))
	f, err := Compile("xh", "dot(velocity, magnetic)", testRaws)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Raws) != 2 || f.Raws[0].Name != "magnetic" || f.Raws[1].Name != "velocity" {
		t.Fatalf("raw inputs = %v", f.Raws)
	}
	out := make([]float64, 1)
	p := grid.Point{X: 3, Y: 5, Z: 2}
	f.Eval(st, []*field.Block{mag, vel}, p, dx, out)
	want := vel.At(p, 0)*mag.At(p, 0) + vel.At(p, 1)*mag.At(p, 1) + vel.At(p, 2)*mag.At(p, 2)
	if math.Abs(out[0]-want) > 1e-9 {
		t.Errorf("cross-helicity = %g, want %g", out[0], want)
	}
	// differential op on one of two fields: cross(velocity, curl(magnetic))
	f2, err := Compile("mt", "cross(velocity, curl(magnetic))", testRaws)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := f2.HalfWidth(2); got != 1 {
		t.Errorf("half-width %d", got)
	}
}

// scalarToVec replicates a scalar block into 3 components for test inputs.
func scalarToVec(s *field.Block) *field.Block {
	out := field.NewBlock(s.Bounds, 3)
	var p grid.Point
	for p.Z = s.Bounds.Lo.Z; p.Z < s.Bounds.Hi.Z; p.Z++ {
		for p.Y = s.Bounds.Lo.Y; p.Y < s.Bounds.Hi.Y; p.Y++ {
			for p.X = s.Bounds.Lo.X; p.X < s.Bounds.Hi.X; p.X++ {
				v := s.At(p, 0)
				out.Set(p, 0, v)
				out.Set(p, 1, 2*v)
				out.Set(p, 2, -v)
			}
		}
	}
	return out
}
