package fieldexpr

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
	raws map[string]int // stored field name → component count
	used map[string]bool
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) accept(k tokenKind) bool {
	if p.toks[p.pos].kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("fieldexpr: expected %s at %d, found %s", what, t.pos, t)
	}
	return t, nil
}

// unaryFuncs maps function names to unary building blocks.
var unaryFuncs = map[string]unaryKind{
	"curl":    opCurl,
	"grad":    opGrad,
	"div":     opDiv,
	"norm":    opNorm,
	"abs":     opAbs,
	"trace":   opTrace,
	"det":     opDet,
	"sym":     opSym,
	"antisym": opAntisym,
	"qcrit":   opQCrit,
	"rinv":    opRInv,
}

// binaryFuncs maps function names to two-argument building blocks.
var binaryFuncs = map[string]binKind{
	"dot":   opDot,
	"cross": opCross,
	"comp":  opComp,
}

// parseExpr parses additive expressions.
func (p *parser) parseExpr() (node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPlus):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left, err = typeBinary(opAdd, "+", left, right)
			if err != nil {
				return nil, err
			}
		case p.accept(tokMinus):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left, err = typeBinary(opSub, "-", left, right)
			if err != nil {
				return nil, err
			}
		default:
			return left, nil
		}
	}
}

// parseTerm parses multiplicative expressions.
func (p *parser) parseTerm() (node, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokStar):
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left, err = typeBinary(opMul, "*", left, right)
			if err != nil {
				return nil, err
			}
		case p.accept(tokSlash):
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left, err = typeBinary(opDivide, "/", left, right)
			if err != nil {
				return nil, err
			}
		default:
			return left, nil
		}
	}
}

// parseFactor parses literals, identifiers, calls, parens and unary minus.
func (p *parser) parseFactor() (node, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		return numberNode{v: t.num}, nil
	case tokMinus:
		arg, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return typeUnary(opNeg, "-", arg)
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, `")"`); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		if p.peek().kind != tokLParen {
			// stored field reference
			nc, ok := p.raws[t.text]
			if !ok {
				return nil, fmt.Errorf("fieldexpr: unknown field %q at %d (stored fields: %v)",
					t.text, t.pos, keysOf(p.raws))
			}
			p.used[t.text] = true
			return rawNode{name: t.text, nc: nc}, nil
		}
		p.next() // consume "("
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		if kind, ok := unaryFuncs[t.text]; ok {
			if len(args) != 1 {
				return nil, fmt.Errorf("fieldexpr: %s takes 1 argument, got %d", t.text, len(args))
			}
			return typeUnary(kind, t.text, args[0])
		}
		if kind, ok := binaryFuncs[t.text]; ok {
			if len(args) != 2 {
				return nil, fmt.Errorf("fieldexpr: %s takes 2 arguments, got %d", t.text, len(args))
			}
			return typeBinary(kind, t.text, args[0], args[1])
		}
		return nil, fmt.Errorf("fieldexpr: unknown function %q at %d", t.text, t.pos)
	default:
		return nil, fmt.Errorf("fieldexpr: unexpected %s", t)
	}
}

// parseArgs parses a call's argument list after the opening paren.
func (p *parser) parseArgs() ([]node, error) {
	var args []node
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.accept(tokComma) {
			continue
		}
		if _, err := p.expect(tokRParen, `")" or ","`); err != nil {
			return nil, err
		}
		return args, nil
	}
}

func keysOf(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// parse builds the typed tree from source.
func parse(src string, raws map[string]int) (node, map[string]bool, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{toks: toks, raws: raws, used: make(map[string]bool)}
	root, err := p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, nil, fmt.Errorf("fieldexpr: trailing %s", t)
	}
	return root, p.used, nil
}
