package fieldexpr

import "fmt"

// node is a typed expression-tree node.
type node interface {
	// ncomp is the component count of the node's value: 1 (scalar),
	// 3 (vector) or 9 (rank-two tensor, row-major).
	ncomp() int
	// depth is how many nested differential operators the node applies;
	// the kernel half-width is depth × the stencil half-width.
	depth() int
}

// numberNode is a literal constant.
type numberNode struct{ v float64 }

func (numberNode) ncomp() int { return 1 }
func (numberNode) depth() int { return 0 }

// rawNode references a stored field; idx selects the corresponding block
// at evaluation time (assigned by Compile in sorted field order).
type rawNode struct {
	name string
	nc   int
	idx  int
}

func (n rawNode) ncomp() int { return n.nc }
func (rawNode) depth() int   { return 0 }

// unaryKind enumerates single-argument building blocks.
type unaryKind int

const (
	opCurl    unaryKind = iota // vector → vector, differential
	opGrad                     // scalar → vector, vector → tensor, differential
	opDiv                      // vector → scalar, differential
	opNorm                     // any → scalar
	opAbs                      // scalar → scalar
	opTrace                    // tensor → scalar
	opDet                      // tensor → scalar
	opSym                      // tensor → tensor
	opAntisym                  // tensor → tensor
	opQCrit                    // tensor → scalar
	opRInv                     // tensor → scalar
	opNeg                      // any → same
)

// unaryNode applies a building block to one argument.
type unaryNode struct {
	kind unaryKind
	arg  node
	nc   int
	dep  int
}

func (n unaryNode) ncomp() int { return n.nc }
func (n unaryNode) depth() int { return n.dep }

// binKind enumerates two-argument building blocks and infix operators.
type binKind int

const (
	opAdd    binKind = iota // same comp
	opSub                   // same comp
	opMul                   // scalar × any (either side)
	opDivide                // any / scalar
	opDot                   // same comp → scalar
	opCross                 // vector × vector → vector
	opComp                  // any, literal index → scalar
)

// binNode applies a two-argument operation.
type binNode struct {
	kind binKind
	a, b node
	nc   int
	dep  int
}

func (n binNode) ncomp() int { return n.nc }
func (n binNode) depth() int { return n.dep }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// typeUnary checks and builds a unary node.
func typeUnary(kind unaryKind, name string, arg node) (node, error) {
	nc := arg.ncomp()
	dep := arg.depth()
	switch kind {
	case opCurl:
		if nc != 3 {
			return nil, fmt.Errorf("fieldexpr: curl needs a vector, got %d components", nc)
		}
		return unaryNode{kind: kind, arg: arg, nc: 3, dep: dep + 1}, nil
	case opGrad:
		switch nc {
		case 1:
			return unaryNode{kind: kind, arg: arg, nc: 3, dep: dep + 1}, nil
		case 3:
			return unaryNode{kind: kind, arg: arg, nc: 9, dep: dep + 1}, nil
		}
		return nil, fmt.Errorf("fieldexpr: grad needs a scalar or vector, got %d components", nc)
	case opDiv:
		if nc != 3 {
			return nil, fmt.Errorf("fieldexpr: div needs a vector, got %d components", nc)
		}
		return unaryNode{kind: kind, arg: arg, nc: 1, dep: dep + 1}, nil
	case opNorm:
		return unaryNode{kind: kind, arg: arg, nc: 1, dep: dep}, nil
	case opAbs:
		if nc != 1 {
			return nil, fmt.Errorf("fieldexpr: abs needs a scalar, got %d components", nc)
		}
		return unaryNode{kind: kind, arg: arg, nc: 1, dep: dep}, nil
	case opTrace, opDet, opQCrit, opRInv:
		if nc != 9 {
			return nil, fmt.Errorf("fieldexpr: %s needs a rank-two tensor, got %d components", name, nc)
		}
		return unaryNode{kind: kind, arg: arg, nc: 1, dep: dep}, nil
	case opSym, opAntisym:
		if nc != 9 {
			return nil, fmt.Errorf("fieldexpr: %s needs a rank-two tensor, got %d components", name, nc)
		}
		return unaryNode{kind: kind, arg: arg, nc: 9, dep: dep}, nil
	case opNeg:
		return unaryNode{kind: kind, arg: arg, nc: nc, dep: dep}, nil
	}
	return nil, fmt.Errorf("fieldexpr: unknown unary op")
}

// typeBinary checks and builds a binary node.
func typeBinary(kind binKind, name string, a, b node) (node, error) {
	na, nb := a.ncomp(), b.ncomp()
	dep := maxInt(a.depth(), b.depth())
	switch kind {
	case opAdd, opSub:
		if na != nb {
			return nil, fmt.Errorf("fieldexpr: %s needs matching components (%d vs %d)", name, na, nb)
		}
		return binNode{kind: kind, a: a, b: b, nc: na, dep: dep}, nil
	case opMul:
		switch {
		case na == 1:
			return binNode{kind: kind, a: a, b: b, nc: nb, dep: dep}, nil
		case nb == 1:
			return binNode{kind: kind, a: b, b: a, nc: na, dep: dep}, nil
		}
		return nil, fmt.Errorf("fieldexpr: * needs a scalar operand (%d vs %d components)", na, nb)
	case opDivide:
		if nb != 1 {
			return nil, fmt.Errorf("fieldexpr: / needs a scalar divisor, got %d components", nb)
		}
		return binNode{kind: kind, a: a, b: b, nc: na, dep: dep}, nil
	case opDot:
		if na != nb {
			return nil, fmt.Errorf("fieldexpr: dot needs matching components (%d vs %d)", na, nb)
		}
		return binNode{kind: kind, a: a, b: b, nc: 1, dep: dep}, nil
	case opCross:
		if na != 3 || nb != 3 {
			return nil, fmt.Errorf("fieldexpr: cross needs two vectors (%d vs %d components)", na, nb)
		}
		return binNode{kind: kind, a: a, b: b, nc: 3, dep: dep}, nil
	case opComp:
		lit, ok := b.(numberNode)
		if !ok {
			return nil, fmt.Errorf("fieldexpr: comp index must be a literal number")
		}
		idx := int(lit.v)
		//lint:allow floateq exact integrality check on a user-written literal
		if float64(idx) != lit.v || idx < 0 || idx >= na {
			return nil, fmt.Errorf("fieldexpr: comp index %v out of range [0,%d)", lit.v, na)
		}
		return binNode{kind: kind, a: a, b: b, nc: 1, dep: a.depth()}, nil
	}
	return nil, fmt.Errorf("fieldexpr: unknown binary op")
}
