package fieldexpr

import (
	"fmt"
	"math"
	"sort"

	"github.com/turbdb/turbdb/internal/derived"
	"github.com/turbdb/turbdb/internal/field"
	"github.com/turbdb/turbdb/internal/grid"
	"github.com/turbdb/turbdb/internal/mathx"
	"github.com/turbdb/turbdb/internal/stencil"
)

// maxDepth bounds nested differential operators: each level widens the halo
// band by one stencil half-width, and the atom store fetches whole 8³ atoms
// per layer, so deep nesting becomes I/O-prohibitive long before it becomes
// incorrect.
const maxDepth = 3

// eval computes the node's value at p into out (length ≥ node.ncomp()).
func eval(n node, st stencil.Stencil, bls []*field.Block, p grid.Point, dx float64, out []float64) {
	switch t := n.(type) {
	case numberNode:
		out[0] = t.v

	case rawNode:
		for c := 0; c < t.nc; c++ {
			out[c] = bls[t.idx].At(p, c)
		}

	case unaryNode:
		var buf [9]float64
		arg := buf[:t.arg.ncomp()]
		switch t.kind {
		case opCurl:
			out[0] = derivExpr(t.arg, st, bls, p, stencil.AxisY, dx, 2) - derivExpr(t.arg, st, bls, p, stencil.AxisZ, dx, 1)
			out[1] = derivExpr(t.arg, st, bls, p, stencil.AxisZ, dx, 0) - derivExpr(t.arg, st, bls, p, stencil.AxisX, dx, 2)
			out[2] = derivExpr(t.arg, st, bls, p, stencil.AxisX, dx, 1) - derivExpr(t.arg, st, bls, p, stencil.AxisY, dx, 0)
		case opGrad:
			nc := t.arg.ncomp()
			for i := 0; i < nc; i++ {
				out[i*3+0] = derivExpr(t.arg, st, bls, p, stencil.AxisX, dx, i)
				out[i*3+1] = derivExpr(t.arg, st, bls, p, stencil.AxisY, dx, i)
				out[i*3+2] = derivExpr(t.arg, st, bls, p, stencil.AxisZ, dx, i)
			}
		case opDiv:
			out[0] = derivExpr(t.arg, st, bls, p, stencil.AxisX, dx, 0) +
				derivExpr(t.arg, st, bls, p, stencil.AxisY, dx, 1) +
				derivExpr(t.arg, st, bls, p, stencil.AxisZ, dx, 2)
		case opNorm:
			eval(t.arg, st, bls, p, dx, arg)
			var s float64
			for _, v := range arg {
				s += v * v
			}
			out[0] = math.Sqrt(s)
		case opAbs:
			eval(t.arg, st, bls, p, dx, arg)
			out[0] = math.Abs(arg[0])
		case opTrace:
			eval(t.arg, st, bls, p, dx, arg)
			out[0] = arg[0] + arg[4] + arg[8]
		case opDet:
			eval(t.arg, st, bls, p, dx, arg)
			out[0] = mat3Of(arg).Det()
		case opSym:
			eval(t.arg, st, bls, p, dx, arg)
			m := mat3Of(arg).Sym()
			storeMat3(m, out)
		case opAntisym:
			eval(t.arg, st, bls, p, dx, arg)
			m := mat3Of(arg).Antisym()
			storeMat3(m, out)
		case opQCrit:
			eval(t.arg, st, bls, p, dx, arg)
			out[0] = mat3Of(arg).QCriterion()
		case opRInv:
			eval(t.arg, st, bls, p, dx, arg)
			_, _, r := mat3Of(arg).Invariants()
			out[0] = r
		case opNeg:
			eval(t.arg, st, bls, p, dx, out[:t.nc])
			for c := 0; c < t.nc; c++ {
				out[c] = -out[c]
			}
		}

	case binNode:
		var bufA, bufB [9]float64
		a := bufA[:t.a.ncomp()]
		b := bufB[:t.b.ncomp()]
		switch t.kind {
		case opAdd:
			eval(t.a, st, bls, p, dx, a)
			eval(t.b, st, bls, p, dx, b)
			for c := 0; c < t.nc; c++ {
				out[c] = a[c] + b[c]
			}
		case opSub:
			eval(t.a, st, bls, p, dx, a)
			eval(t.b, st, bls, p, dx, b)
			for c := 0; c < t.nc; c++ {
				out[c] = a[c] - b[c]
			}
		case opMul: // a is the scalar side (normalized by typeBinary)
			eval(t.a, st, bls, p, dx, a)
			eval(t.b, st, bls, p, dx, b)
			for c := 0; c < t.nc; c++ {
				out[c] = a[0] * b[c]
			}
		case opDivide:
			eval(t.a, st, bls, p, dx, a)
			eval(t.b, st, bls, p, dx, b)
			for c := 0; c < t.nc; c++ {
				out[c] = a[c] / b[0]
			}
		case opDot:
			eval(t.a, st, bls, p, dx, a)
			eval(t.b, st, bls, p, dx, b)
			var s float64
			for c := range a {
				s += a[c] * b[c]
			}
			out[0] = s
		case opCross:
			eval(t.a, st, bls, p, dx, a)
			eval(t.b, st, bls, p, dx, b)
			va := mathx.Vec3{X: a[0], Y: a[1], Z: a[2]}
			vb := mathx.Vec3{X: b[0], Y: b[1], Z: b[2]}
			v := va.Cross(vb)
			out[0], out[1], out[2] = v.X, v.Y, v.Z
		case opComp:
			eval(t.a, st, bls, p, dx, a)
			out[0] = a[int(t.b.(numberNode).v)]
		}
	}
}

// derivExpr differentiates component comp of subexpression n along axis at
// p, by evaluating n at the stencil's neighbor points.
func derivExpr(n node, st stencil.Stencil, bls []*field.Block, p grid.Point, axis stencil.Axis, dx float64, comp int) float64 {
	var plusBuf, minusBuf [9]float64
	plus := plusBuf[:n.ncomp()]
	minus := minusBuf[:n.ncomp()]
	var sum float64
	for k := 1; k <= st.HalfWidth; k++ {
		var pp, pm grid.Point
		switch axis {
		case stencil.AxisX:
			pp, pm = p.Add(k, 0, 0), p.Add(-k, 0, 0)
		case stencil.AxisY:
			pp, pm = p.Add(0, k, 0), p.Add(0, -k, 0)
		default:
			pp, pm = p.Add(0, 0, k), p.Add(0, 0, -k)
		}
		eval(n, st, bls, pp, dx, plus)
		eval(n, st, bls, pm, dx, minus)
		sum += st.Coeffs[k-1] * (plus[comp] - minus[comp])
	}
	return sum / dx
}

// mat3Of views a 9-element row-major buffer as a tensor.
func mat3Of(v []float64) mathx.Mat3 {
	return mathx.Mat3{
		{v[0], v[1], v[2]},
		{v[3], v[4], v[5]},
		{v[6], v[7], v[8]},
	}
}

// storeMat3 flattens a tensor into a 9-element buffer.
func storeMat3(m mathx.Mat3, out []float64) {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i*3+j] = m[i][j]
		}
	}
}

// Compile parses src, type-checks it against the stored fields of raws
// (name → component count) and returns a derived.Field named name, ready to
// register and query. The expression may combine multiple stored fields
// (e.g. the MHD cross-helicity dot(velocity, magnetic)).
func Compile(name, src string, raws map[string]int) (*derived.Field, error) {
	if name == "" {
		return nil, fmt.Errorf("fieldexpr: empty field name")
	}
	root, used, err := parse(src, raws)
	if err != nil {
		return nil, err
	}
	if len(used) == 0 {
		return nil, fmt.Errorf("fieldexpr: expression references no stored field")
	}
	if root.ncomp() != 1 && root.ncomp() != 3 && root.ncomp() != 9 {
		return nil, fmt.Errorf("fieldexpr: unsupported result arity %d", root.ncomp())
	}
	if root.depth() > maxDepth {
		return nil, fmt.Errorf("fieldexpr: %d nested differential operators exceed the limit of %d",
			root.depth(), maxDepth)
	}
	// assign block indices in sorted field order and rewrite the tree
	names := make([]string, 0, len(used))
	for f := range used {
		names = append(names, f)
	}
	sort.Strings(names)
	idx := make(map[string]int, len(names))
	inputs := make([]derived.RawInput, len(names))
	for i, f := range names {
		idx[f] = i
		inputs[i] = derived.RawInput{Name: f, NComp: raws[f]}
	}
	root = assignIndices(root, idx)

	depth := root.depth()
	return &derived.Field{
		Name:         name,
		Raws:         inputs,
		OutComp:      root.ncomp(),
		NeedsStencil: depth > 0,
		HalfWidthFn: func(order int) (int, error) {
			st, err := stencil.Get(order)
			if err != nil {
				return 0, err
			}
			return depth * st.HalfWidth, nil
		},
		Eval: func(st stencil.Stencil, bls []*field.Block, p grid.Point, dx float64, out []float64) {
			eval(root, st, bls, p, dx, out)
		},
	}, nil
}

// assignIndices rewrites rawNodes with their block indices.
func assignIndices(n node, idx map[string]int) node {
	switch t := n.(type) {
	case rawNode:
		t.idx = idx[t.name]
		return t
	case unaryNode:
		t.arg = assignIndices(t.arg, idx)
		return t
	case binNode:
		t.a = assignIndices(t.a, idx)
		t.b = assignIndices(t.b, idx)
		return t
	default:
		return n
	}
}
