// Package fieldexpr implements the declarative derived-field interface the
// paper's conclusion proposes: "declarative and graphical user interfaces
// that will allow users to combine existing building blocks and perform
// computations that have not been explicitly implemented".
//
// An expression names one stored field and composes building blocks around
// it; the compiler turns it into a derived.Field that the threshold engine
// evaluates like any built-in field — including computing the kernel
// half-width (nested differential operators widen the halo band fetched
// from adjacent nodes automatically). Examples:
//
//	curl(velocity)                      // the built-in vorticity
//	norm(grad(pressure))                // pressure-gradient magnitude
//	cross(velocity, curl(velocity))     // the Lamb vector
//	div(grad(pressure))                 // Laplacian via composition
//	qcrit(grad(velocity)) - 0.5*trace(grad(velocity))
//
// Grammar (function application plus infix arithmetic):
//
//	expr    = term { ("+" | "-") term }
//	term    = factor { ("*" | "/") factor }
//	factor  = number | ident | ident "(" expr { "," expr } ")"
//	        | "(" expr ")" | "-" factor
//
// Values are typed by component count: scalars (1), vectors (3) and
// rank-two tensors (9, row-major ∂u_i/∂x_j). An expression may reference
// exactly one stored field (the engine reads a single raw field per query).
package fieldexpr

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokPlus
	tokMinus
	tokStar
	tokSlash
)

// token is one lexeme.
type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

// String renders the token for error messages.
func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of expression"
	case tokNumber:
		return fmt.Sprintf("number %q", t.text)
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	var out []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			out = append(out, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			out = append(out, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == ',':
			out = append(out, token{kind: tokComma, text: ",", pos: i})
			i++
		case c == '+':
			out = append(out, token{kind: tokPlus, text: "+", pos: i})
			i++
		case c == '-':
			out = append(out, token{kind: tokMinus, text: "-", pos: i})
			i++
		case c == '*':
			out = append(out, token{kind: tokStar, text: "*", pos: i})
			i++
		case c == '/':
			out = append(out, token{kind: tokSlash, text: "/", pos: i})
			i++
		case unicode.IsDigit(c) || c == '.':
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.' ||
				src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			text := src[i:j]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("fieldexpr: bad number %q at %d", text, i)
			}
			out = append(out, token{kind: tokNumber, text: text, num: v, pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			out = append(out, token{kind: tokIdent, text: src[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("fieldexpr: unexpected character %q at %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: len(src)})
	return out, nil
}
