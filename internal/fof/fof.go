// Package fof implements friends-of-friends (FoF) clustering of threshold-
// query result points in three dimensions (one time-step) and four
// dimensions (across time-steps).
//
// This is the analysis from Sec. 3 of the paper: the locations of maximum
// vorticity returned by threshold queries are clustered "in both 3d and
// 4d"; the 4-D clusters track the evolution of intense vortices ("worms"),
// revealing for example that the most intense event in the isotropic
// dataset develops from nothing within the stored timespan (Fig. 3).
//
// Two points are friends when their spatial distance (minimum-image if the
// domain is periodic) is at most the link length and, in 4-D mode, their
// time-steps differ by at most the time link. Clusters are the connected
// components of the friendship graph, found with a cell-hash neighbor
// search in O(n · neighbors).
package fof

import (
	"fmt"
	"sort"
)

// Point is one thresholded grid location, optionally tagged with the
// time-step it came from.
type Point struct {
	X, Y, Z int
	T       int
	// Value is the field norm at the location (used to find cluster peaks).
	Value float32
}

// Params configures the clustering.
type Params struct {
	// LinkLength is the maximum spatial distance (in grid cells) at which
	// two points are friends. Must be positive.
	LinkLength float64
	// TimeLink is the maximum |Δt| at which two points can be friends; 0
	// restricts clustering to single time-steps (3-D mode).
	TimeLink int
	// Periodic is the domain side for periodic minimum-image distances; 0
	// disables wrapping.
	Periodic int
}

// Cluster is one connected component.
type Cluster struct {
	// Points are the member points (in input order).
	Points []Point
	// Peak is the member with the largest Value — the most intense event in
	// the cluster.
	Peak Point
	// MinT and MaxT are the time-step span of the cluster.
	MinT, MaxT int
}

// Size returns the number of member points.
func (c Cluster) Size() int { return len(c.Points) }

// FindClusters runs friends-of-friends over the points and returns the
// clusters sorted by descending peak value (the paper's "most intense
// event" is Clusters[0]).
func FindClusters(points []Point, p Params) ([]Cluster, error) {
	if p.LinkLength <= 0 {
		return nil, fmt.Errorf("fof: link length must be positive, got %g", p.LinkLength)
	}
	if p.TimeLink < 0 {
		return nil, fmt.Errorf("fof: negative time link")
	}
	if p.Periodic < 0 {
		return nil, fmt.Errorf("fof: negative domain side")
	}
	n := len(points)
	if n == 0 {
		return nil, nil
	}

	// cell hash: cell side = ceil(link length), so friends are always in
	// adjacent cells
	cell := int(p.LinkLength)
	if float64(cell) < p.LinkLength {
		cell++
	}
	type cellKey struct{ cx, cy, cz, t int }
	cells := make(map[cellKey][]int, n)
	keyOf := func(pt Point) cellKey {
		return cellKey{floorDiv(pt.X, cell), floorDiv(pt.Y, cell), floorDiv(pt.Z, cell), pt.T}
	}
	for i, pt := range points {
		k := keyOf(pt)
		cells[k] = append(cells[k], i)
	}

	// union-find
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	link2 := p.LinkLength * p.LinkLength
	friends := func(a, b Point) bool {
		dt := a.T - b.T
		if dt < 0 {
			dt = -dt
		}
		if dt > p.TimeLink {
			return false
		}
		dx := minImage(a.X-b.X, p.Periodic)
		dy := minImage(a.Y-b.Y, p.Periodic)
		dz := minImage(a.Z-b.Z, p.Periodic)
		return float64(dx*dx+dy*dy+dz*dz) <= link2
	}

	// cellsPerDomain is used to wrap neighbor cell coordinates when periodic
	cellsPerDomain := 0
	if p.Periodic > 0 {
		cellsPerDomain = (p.Periodic + cell - 1) / cell
	}
	for i, pt := range points {
		base := keyOf(pt)
		for dt := -p.TimeLink; dt <= p.TimeLink; dt++ {
			for dzc := -1; dzc <= 1; dzc++ {
				for dyc := -1; dyc <= 1; dyc++ {
					for dxc := -1; dxc <= 1; dxc++ {
						k := cellKey{base.cx + dxc, base.cy + dyc, base.cz + dzc, base.t + dt}
						if cellsPerDomain > 0 {
							k.cx = wrap(k.cx, cellsPerDomain)
							k.cy = wrap(k.cy, cellsPerDomain)
							k.cz = wrap(k.cz, cellsPerDomain)
						}
						for _, j := range cells[k] {
							if j <= i {
								continue
							}
							if friends(pt, points[j]) {
								union(i, j)
							}
						}
					}
				}
			}
		}
	}

	// gather components
	byRoot := make(map[int]*Cluster)
	var order []int
	for i, pt := range points {
		r := find(i)
		c, ok := byRoot[r]
		if !ok {
			c = &Cluster{Peak: pt, MinT: pt.T, MaxT: pt.T}
			byRoot[r] = c
			order = append(order, r)
		}
		c.Points = append(c.Points, pt)
		if pt.Value > c.Peak.Value {
			c.Peak = pt
		}
		if pt.T < c.MinT {
			c.MinT = pt.T
		}
		if pt.T > c.MaxT {
			c.MaxT = pt.T
		}
	}
	out := make([]Cluster, 0, len(order))
	for _, r := range order {
		out = append(out, *byRoot[r])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Peak.Value > out[j].Peak.Value })
	return out, nil
}

// minImage maps a coordinate difference onto the nearest periodic image.
func minImage(d, n int) int {
	if n <= 0 {
		return d
	}
	d %= n
	if d > n/2 {
		d -= n
	}
	if d < -n/2 {
		d += n
	}
	return d
}

// wrap maps a cell coordinate onto [0, n).
func wrap(c, n int) int {
	c %= n
	if c < 0 {
		c += n
	}
	return c
}

// floorDiv divides rounding toward negative infinity.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
