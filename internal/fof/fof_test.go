package fof

import (
	"math/rand"
	"testing"
)

func mustClusters(t *testing.T, pts []Point, p Params) []Cluster {
	t.Helper()
	cs, err := FindClusters(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestValidation(t *testing.T) {
	if _, err := FindClusters(nil, Params{LinkLength: 0}); err == nil {
		t.Error("accepted zero link length")
	}
	if _, err := FindClusters(nil, Params{LinkLength: 1, TimeLink: -1}); err == nil {
		t.Error("accepted negative time link")
	}
	if _, err := FindClusters(nil, Params{LinkLength: 1, Periodic: -4}); err == nil {
		t.Error("accepted negative domain")
	}
}

func TestEmptyInput(t *testing.T) {
	cs := mustClusters(t, nil, Params{LinkLength: 1})
	if cs != nil {
		t.Errorf("clusters of nothing: %v", cs)
	}
}

func TestTwoSeparateGroups(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0, Z: 0, Value: 1},
		{X: 1, Y: 0, Z: 0, Value: 2},
		{X: 0, Y: 1, Z: 0, Value: 3},
		{X: 20, Y: 20, Z: 20, Value: 9},
		{X: 21, Y: 20, Z: 20, Value: 4},
	}
	cs := mustClusters(t, pts, Params{LinkLength: 1.5})
	if len(cs) != 2 {
		t.Fatalf("got %d clusters, want 2", len(cs))
	}
	// sorted by peak: cluster 0 has peak 9
	if cs[0].Peak.Value != 9 || cs[0].Size() != 2 {
		t.Errorf("cluster 0: peak %v size %d", cs[0].Peak.Value, cs[0].Size())
	}
	if cs[1].Peak.Value != 3 || cs[1].Size() != 3 {
		t.Errorf("cluster 1: peak %v size %d", cs[1].Peak.Value, cs[1].Size())
	}
}

func TestChainLinking(t *testing.T) {
	// a chain of points each within link length of the next must form one
	// cluster even though the ends are far apart
	var pts []Point
	for i := 0; i < 30; i++ {
		pts = append(pts, Point{X: i, Y: 0, Z: 0, Value: float32(i)})
	}
	cs := mustClusters(t, pts, Params{LinkLength: 1.0})
	if len(cs) != 1 {
		t.Fatalf("chain split into %d clusters", len(cs))
	}
	if cs[0].Size() != 30 {
		t.Errorf("chain cluster size %d", cs[0].Size())
	}
}

func TestDiagonalDistance(t *testing.T) {
	// (0,0,0) and (1,1,1): distance √3 ≈ 1.73
	pts := []Point{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 1, Z: 1}}
	if cs := mustClusters(t, pts, Params{LinkLength: 1.7}); len(cs) != 2 {
		t.Error("linked across > link length")
	}
	if cs := mustClusters(t, pts, Params{LinkLength: 1.8}); len(cs) != 1 {
		t.Error("failed to link within link length")
	}
}

func TestPeriodicWrapping(t *testing.T) {
	// points at opposite domain edges are neighbors under periodicity
	pts := []Point{{X: 0, Y: 5, Z: 5}, {X: 15, Y: 5, Z: 5}}
	if cs := mustClusters(t, pts, Params{LinkLength: 1.5, Periodic: 16}); len(cs) != 1 {
		t.Error("periodic images not linked")
	}
	if cs := mustClusters(t, pts, Params{LinkLength: 1.5}); len(cs) != 2 {
		t.Error("non-periodic run wrongly linked edges")
	}
}

func Test3DModeSeparatesTimesteps(t *testing.T) {
	pts := []Point{
		{X: 5, Y: 5, Z: 5, T: 0, Value: 1},
		{X: 5, Y: 5, Z: 5, T: 1, Value: 2},
	}
	cs := mustClusters(t, pts, Params{LinkLength: 1})
	if len(cs) != 2 {
		t.Errorf("3-D mode linked across time: %d clusters", len(cs))
	}
}

func Test4DModeTracksAcrossTime(t *testing.T) {
	// a "worm" drifting one cell per step
	var pts []Point
	for step := 0; step < 5; step++ {
		pts = append(pts, Point{X: 10 + step, Y: 3, Z: 3, T: step, Value: float32(step)})
	}
	// plus an unrelated event at a distant location and time
	pts = append(pts, Point{X: 50, Y: 50, Z: 50, T: 9, Value: 100})
	cs := mustClusters(t, pts, Params{LinkLength: 1.5, TimeLink: 1, Periodic: 64})
	if len(cs) != 2 {
		t.Fatalf("got %d clusters, want 2", len(cs))
	}
	// most intense first
	if cs[0].Size() != 1 || cs[0].Peak.Value != 100 {
		t.Errorf("cluster 0: %+v", cs[0])
	}
	worm := cs[1]
	if worm.Size() != 5 {
		t.Errorf("worm size %d", worm.Size())
	}
	if worm.MinT != 0 || worm.MaxT != 4 {
		t.Errorf("worm span [%d,%d]", worm.MinT, worm.MaxT)
	}
}

func TestTimeLinkGap(t *testing.T) {
	// same location, steps 0 and 2, time link 1 → separate clusters;
	// time link 2 → one cluster
	pts := []Point{
		{X: 1, Y: 1, Z: 1, T: 0},
		{X: 1, Y: 1, Z: 1, T: 2},
	}
	if cs := mustClusters(t, pts, Params{LinkLength: 1, TimeLink: 1}); len(cs) != 2 {
		t.Error("gap of 2 steps linked with time link 1")
	}
	if cs := mustClusters(t, pts, Params{LinkLength: 1, TimeLink: 2}); len(cs) != 1 {
		t.Error("gap of 2 steps not linked with time link 2")
	}
}

// Property: FoF output must not depend on input order.
func TestOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var pts []Point
	for i := 0; i < 300; i++ {
		pts = append(pts, Point{
			X: rng.Intn(32), Y: rng.Intn(32), Z: rng.Intn(32),
			Value: rng.Float32(),
		})
	}
	p := Params{LinkLength: 2.0, Periodic: 32}
	a := mustClusters(t, pts, p)
	shuffled := append([]Point(nil), pts...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := mustClusters(t, shuffled, p)
	if len(a) != len(b) {
		t.Fatalf("cluster count depends on order: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Size() != b[i].Size() || a[i].Peak.Value != b[i].Peak.Value {
			t.Fatalf("cluster %d differs: %d/%v vs %d/%v",
				i, a[i].Size(), a[i].Peak.Value, b[i].Size(), b[i].Peak.Value)
		}
	}
}

// Property: union of all clusters is exactly the input point set.
func TestClustersPartitionInput(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var pts []Point
	for i := 0; i < 500; i++ {
		pts = append(pts, Point{X: rng.Intn(64), Y: rng.Intn(64), Z: rng.Intn(64), T: rng.Intn(3)})
	}
	cs := mustClusters(t, pts, Params{LinkLength: 1.8, TimeLink: 1, Periodic: 64})
	total := 0
	for _, c := range cs {
		total += c.Size()
	}
	if total != len(pts) {
		t.Errorf("clusters cover %d points, input had %d", total, len(pts))
	}
}

func BenchmarkFoF10k(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	var pts []Point
	for i := 0; i < 10000; i++ {
		pts = append(pts, Point{X: rng.Intn(128), Y: rng.Intn(128), Z: rng.Intn(128)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindClusters(pts, Params{LinkLength: 2, Periodic: 128}); err != nil {
			b.Fatal(err)
		}
	}
}
