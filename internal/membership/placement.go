package membership

import (
	"fmt"
	"sort"

	"github.com/turbdb/turbdb/internal/morton"
)

// Placement maps contiguous Morton ranges to k owner nodes each. It is a
// pure function of (domain, sorted member set, k) — every node and the
// mediator derive the identical placement independently, so no placement
// state is ever exchanged.
//
// Invariants (relied on by the mediator's failover fan-out and the cluster
// rebalancer):
//
//   - Ranges partition the domain: they are disjoint, contiguous, sorted,
//     and cover [domain.Lo, domain.Hi) with atom granularity.
//   - Ranges[i] is member Members[i]'s primary range and Owners[i][0] ==
//     Members[i]; Owners[i][1:] are the replicas, the next members along
//     the sorted ring.
//   - len(Owners[i]) == min(k, len(Members)) for every i.
type Placement struct {
	// Members is the sorted serving member set the placement was derived
	// from.
	Members []int
	// Ranges[i] is the i-th contiguous Morton range (member Members[i]'s
	// primary).
	Ranges []morton.Range
	// Owners[i] lists the nodes holding Ranges[i], primary first.
	Owners [][]int
}

// Place derives the k-way replica placement of domain over members. k is
// clamped to the member count; k ≤ 1 yields an unreplicated placement.
// members must not outnumber the domain's cells (a node with no atoms
// cannot hold a store).
func Place(domain morton.Range, members []int, k int) (Placement, error) {
	if len(members) == 0 {
		return Placement{}, fmt.Errorf("membership: placement needs at least one member")
	}
	if uint64(len(members)) > domain.CellCount() {
		return Placement{}, fmt.Errorf("membership: %d members exceed the domain's %d cells",
			len(members), domain.CellCount())
	}
	if k < 1 {
		k = 1
	}
	if k > len(members) {
		k = len(members)
	}
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	for i := 1; i < len(ms); i++ {
		if ms[i] == ms[i-1] {
			return Placement{}, fmt.Errorf("membership: duplicate member %d", ms[i])
		}
	}
	p := Placement{
		Members: ms,
		Ranges:  domain.Split(len(ms), 1),
		Owners:  make([][]int, len(ms)),
	}
	for i := range ms {
		p.Owners[i] = make([]int, k)
		for j := 0; j < k; j++ {
			p.Owners[i][j] = ms[(i+j)%len(ms)]
		}
	}
	return p, nil
}

// PrimaryOf returns id's primary range (false if id is not a member).
func (p Placement) PrimaryOf(id int) (morton.Range, bool) {
	for i, m := range p.Members {
		if m == id {
			return p.Ranges[i], true
		}
	}
	return morton.Range{}, false
}

// RangesOf returns every non-empty range id owns (primary and replica),
// sorted by range order.
func (p Placement) RangesOf(id int) []morton.Range {
	var out []morton.Range
	for i, owners := range p.Owners {
		if p.Ranges[i].Empty() {
			continue
		}
		for _, o := range owners {
			if o == id {
				out = append(out, p.Ranges[i])
				break
			}
		}
	}
	return out
}

// OwnersOf returns the owner list (primary first) of the range containing
// code, or nil when no range contains it.
func (p Placement) OwnersOf(code morton.Code) []int {
	for i, r := range p.Ranges {
		if r.Contains(code) {
			return p.Owners[i]
		}
	}
	return nil
}
