package membership

import (
	"reflect"
	"testing"

	"github.com/turbdb/turbdb/internal/morton"
)

func TestTableLifecycle(t *testing.T) {
	tb := NewTable(0, 1, 2)
	if got := tb.Serving(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("serving = %v", got)
	}
	v0 := tb.Version()

	if err := tb.Join(3); err != nil {
		t.Fatal(err)
	}
	if s := tb.State(3); s != Joining {
		t.Fatalf("state(3) = %v", s)
	}
	if got := tb.Serving(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("joining node serves early: %v", got)
	}
	if err := tb.Join(1); err == nil {
		t.Fatal("re-joining a live member should fail")
	}
	if err := tb.Activate(3); err != nil {
		t.Fatal(err)
	}
	if got := tb.Serving(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("serving after activate = %v", got)
	}
	if err := tb.Activate(3); err == nil {
		t.Fatal("double activate should fail")
	}

	if err := tb.Leave(2); err != nil {
		t.Fatal(err)
	}
	if s := tb.State(2); s != Leaving || !s.Serving() {
		t.Fatalf("leaving node must keep serving, state = %v", s)
	}
	tb.Remove(2)
	if got := tb.Serving(); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("serving after remove = %v", got)
	}
	if s := tb.State(2); s != Left {
		t.Fatalf("state(2) = %v", s)
	}
	if tb.Version() <= v0 {
		t.Fatalf("version did not advance: %d -> %d", v0, tb.Version())
	}
}

func TestTableHealthTransitions(t *testing.T) {
	tb := NewTable(0, 1)
	tb.MarkSuspect(0)
	if s := tb.State(0); s != Suspect || !s.Serving() {
		t.Fatalf("suspect must keep serving, state = %v", s)
	}
	tb.MarkAlive(0)
	if s := tb.State(0); s != Alive {
		t.Fatalf("state(0) = %v", s)
	}
	// Health transitions never touch non-Alive/Suspect states.
	if err := tb.Leave(1); err != nil {
		t.Fatal(err)
	}
	tb.MarkSuspect(1)
	if s := tb.State(1); s != Leaving {
		t.Fatalf("suspect must not override draining, state = %v", s)
	}
	v := tb.Version()
	tb.MarkAlive(1) // no-op
	if tb.Version() != v {
		t.Fatal("no-op transition bumped the version")
	}
}

func TestPlacementInvariants(t *testing.T) {
	domain := morton.Range{Lo: 0, Hi: 64}
	members := []int{4, 0, 2, 1, 3} // unsorted on purpose
	p, err := Place(domain, members, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Members, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("members = %v", p.Members)
	}
	// Ranges partition the domain.
	var cells uint64
	lo := domain.Lo
	for i, r := range p.Ranges {
		if r.Lo != lo {
			t.Fatalf("range %d starts at %v, want %v", i, r.Lo, lo)
		}
		lo = r.Hi
		cells += r.CellCount()
	}
	if lo != domain.Hi || cells != domain.CellCount() {
		t.Fatalf("ranges do not cover the domain: end %v, %d cells", lo, cells)
	}
	// Owners: primary first, k owners each, ring order.
	for i, owners := range p.Owners {
		if len(owners) != 2 {
			t.Fatalf("range %d has %d owners", i, len(owners))
		}
		if owners[0] != p.Members[i] {
			t.Fatalf("range %d primary = %d, want %d", i, owners[0], p.Members[i])
		}
		if owners[1] != p.Members[(i+1)%len(p.Members)] {
			t.Fatalf("range %d replica = %d", i, owners[1])
		}
	}
	// Deterministic: same inputs, same placement.
	p2, err := Place(domain, []int{0, 1, 2, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatal("placement is not deterministic")
	}
}

func TestPlacementLookups(t *testing.T) {
	domain := morton.Range{Lo: 0, Hi: 8}
	p, err := Place(domain, []int{0, 1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := p.PrimaryOf(2)
	if !ok || r != p.Ranges[2] {
		t.Fatalf("PrimaryOf(2) = %v, %v", r, ok)
	}
	if _, ok := p.PrimaryOf(9); ok {
		t.Fatal("PrimaryOf of a non-member succeeded")
	}
	// Node 1 owns its primary (range 1) and replicates range 0.
	if got := p.RangesOf(1); !reflect.DeepEqual(got, []morton.Range{p.Ranges[0], p.Ranges[1]}) {
		t.Fatalf("RangesOf(1) = %v", got)
	}
	for _, r := range p.Ranges {
		for c := r.Lo; c < r.Hi; c++ {
			owners := p.OwnersOf(c)
			if len(owners) != 2 {
				t.Fatalf("OwnersOf(%v) = %v", c, owners)
			}
		}
	}
	if got := p.OwnersOf(morton.Code(99)); got != nil {
		t.Fatalf("OwnersOf outside the domain = %v", got)
	}
}

func TestPlacementErrors(t *testing.T) {
	domain := morton.Range{Lo: 0, Hi: 4}
	if _, err := Place(domain, nil, 2); err == nil {
		t.Fatal("empty member set accepted")
	}
	if _, err := Place(domain, []int{0, 1, 2, 3, 4}, 2); err == nil {
		t.Fatal("more members than cells accepted")
	}
	if _, err := Place(domain, []int{0, 1, 1}, 2); err == nil {
		t.Fatal("duplicate members accepted")
	}
	// k clamps to the member count.
	p, err := Place(domain, []int{0, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Owners[0]) != 2 {
		t.Fatalf("k not clamped: %v", p.Owners[0])
	}
}
