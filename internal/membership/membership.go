// Package membership tracks which database nodes belong to the cluster and
// how healthy each one is, and derives the deterministic k-way replica
// placement of Morton ranges over the serving members.
//
// The table is the cluster's single source of truth for elasticity: nodes
// join (streaming their assigned ranges while the old placement keeps
// serving), leave gracefully, and oscillate between Alive and Suspect as
// the fault-tolerance breakers observe them. Health states never move data
// — placement follows the serving set only, so a flapping node keeps its
// ranges and simply drops to the back of every failover order.
package membership

import (
	"fmt"
	"sort"
	"sync"

	"github.com/turbdb/turbdb/internal/obs"
)

// Membership metrics: the serving-set size, how many members are currently
// suspect, and a version counter that increments on every state change so
// dashboards can spot churn.
var (
	mServing = obs.Default().Gauge("turbdb_membership_serving")
	mSuspect = obs.Default().Gauge("turbdb_membership_suspect")
	mVersion = obs.Default().Gauge("turbdb_membership_version")
)

// State is a member's lifecycle state.
type State int

const (
	// Alive members serve queries and hold their placement ranges.
	Alive State = iota
	// Suspect members are serving but unhealthy (their breaker opened);
	// failover prefers other replicas. Placement is unchanged.
	Suspect
	// Joining members are streaming their assigned ranges and do not serve
	// until activated.
	Joining
	// Leaving members are draining: they still serve (their data is being
	// re-streamed to the survivors) but will be removed.
	Leaving
	// Left members have been removed from the cluster.
	Left
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Joining:
		return "joining"
	case Leaving:
		return "leaving"
	case Left:
		return "left"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Serving reports whether a member in this state answers queries: Alive and
// Suspect members do, and Leaving members keep serving until their data has
// been re-streamed.
func (s State) Serving() bool { return s == Alive || s == Suspect || s == Leaving }

// Member is one row of a membership snapshot.
type Member struct {
	ID    int
	State State
}

// Table is the cluster's membership and health table. Safe for concurrent
// use; all methods take the table's own lock only, so callers may hold any
// higher-ranked lock.
type Table struct {
	//turbdb:lockrank membership.table 15
	mu      sync.Mutex
	members map[int]State // guarded by mu
	version uint64        // guarded by mu
}

// NewTable builds a table with the given members, all Alive.
func NewTable(ids ...int) *Table {
	t := &Table{}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.members = make(map[int]State, len(ids))
	for _, id := range ids {
		t.members[id] = Alive
	}
	t.version = 1
	t.noteLocked()
	return t
}

// noteLocked refreshes the membership gauges from the current state. Called
// with t.mu held (gauges are atomic, not locked).
func (t *Table) noteLocked() {
	var serving, suspect int64
	for _, s := range t.members {
		if s.Serving() {
			serving++
		}
		if s == Suspect {
			suspect++
		}
	}
	mServing.Set(serving)
	mSuspect.Set(suspect)
	mVersion.Set(int64(t.version))
}

// setLocked transitions id to s, bumping the version; no-op when already
// there. Called with t.mu held.
func (t *Table) setLocked(id int, s State) {
	if t.members[id] == s {
		return
	}
	t.members[id] = s
	t.version++
	t.noteLocked()
}

// Join registers a new member in the Joining state. Rejoining a Left member
// restarts it as Joining.
func (t *Table) Join(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.members[id]; ok && s != Left {
		return fmt.Errorf("membership: node %d already a member (%v)", id, s)
	}
	t.setLocked(id, Joining)
	return nil
}

// Activate promotes a Joining member to Alive once its ranges are streamed.
func (t *Table) Activate(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.members[id]; s != Joining {
		return fmt.Errorf("membership: node %d is %v, not joining", id, s)
	}
	t.setLocked(id, Alive)
	return nil
}

// Leave marks a member as draining; it keeps serving until Remove.
func (t *Table) Leave(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.members[id]
	if !ok || s == Left {
		return fmt.Errorf("membership: node %d is not a member", id)
	}
	t.setLocked(id, Leaving)
	return nil
}

// Remove finalizes a leave: the member stops serving.
func (t *Table) Remove(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.setLocked(id, Left)
}

// MarkSuspect records a health failure (an opened breaker) for an Alive
// member. Other states are unchanged — health never interrupts a join or a
// drain.
func (t *Table) MarkSuspect(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.members[id] == Alive {
		t.setLocked(id, Suspect)
	}
}

// MarkAlive records recovery (a re-closed breaker) for a Suspect member.
func (t *Table) MarkAlive(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.members[id] == Suspect {
		t.setLocked(id, Alive)
	}
}

// State returns a member's current state (Left for unknown ids).
func (t *Table) State(id int) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.members[id]
	if !ok {
		return Left
	}
	return s
}

// Version returns the state-change counter; it increments on every
// transition, so equal versions imply identical tables.
func (t *Table) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Serving returns the sorted ids of members currently answering queries.
func (t *Table) Serving() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.members))
	for id, s := range t.members {
		if s.Serving() {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Members returns a sorted snapshot of every member, including Left ones.
func (t *Table) Members() []Member {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Member, 0, len(t.members))
	for id, s := range t.members {
		out = append(out, Member{ID: id, State: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
