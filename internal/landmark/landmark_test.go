package landmark

import (
	"math"
	"testing"

	"github.com/turbdb/turbdb/internal/fof"
	"github.com/turbdb/turbdb/internal/grid"
)

// twoEvents builds points for two separated events, one spanning two steps.
func twoEvents() []fof.Point {
	var pts []fof.Point
	// event A: a 2×2 patch at (4..5, 4, 4), steps 0-1, peak 9 at step 1
	for t := 0; t < 2; t++ {
		pts = append(pts,
			fof.Point{X: 4, Y: 4, Z: 4, T: t, Value: 5},
			fof.Point{X: 5, Y: 4, Z: 4, T: t, Value: float32(5 + 4*t)},
		)
	}
	// event B: single point far away, step 0, peak 7
	pts = append(pts, fof.Point{X: 30, Y: 30, Z: 30, T: 0, Value: 7})
	return pts
}

func buildTwo(t *testing.T) (*DB, []Landmark) {
	t.Helper()
	d := New()
	ls, err := d.BuildFromPoints("iso", "vorticity", 5, twoEvents(),
		fof.Params{LinkLength: 1.5, TimeLink: 1, Periodic: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d, ls
}

func TestBuildFromPoints(t *testing.T) {
	d, ls := buildTwo(t)
	if len(ls) != 2 {
		t.Fatalf("landmarks = %d, want 2", len(ls))
	}
	if d.Count() != 2 {
		t.Errorf("Count = %d", d.Count())
	}
	// most intense first
	a := ls[0]
	if a.PeakValue != 9 || a.Peak != (grid.Point{X: 5, Y: 4, Z: 4}) || a.PeakStep != 1 {
		t.Errorf("event A peak: %+v", a)
	}
	if a.Size != 4 || a.FirstStep != 0 || a.LastStep != 1 || a.Lifespan() != 2 {
		t.Errorf("event A stats: %+v", a)
	}
	wantCentroid := [3]float64{4.5, 4, 4}
	for i := range wantCentroid {
		if math.Abs(a.Centroid[i]-wantCentroid[i]) > 1e-12 {
			t.Errorf("centroid = %v", a.Centroid)
		}
	}
	wantBox := grid.Box{Lo: grid.Point{X: 4, Y: 4, Z: 4}, Hi: grid.Point{X: 6, Y: 5, Z: 5}}
	if a.BBox != wantBox {
		t.Errorf("bbox = %v, want %v", a.BBox, wantBox)
	}
	if ls[1].PeakValue != 7 || ls[1].Size != 1 {
		t.Errorf("event B: %+v", ls[1])
	}
	if ls[0].ID == ls[1].ID || ls[0].ID == 0 {
		t.Errorf("IDs not assigned: %d %d", ls[0].ID, ls[1].ID)
	}
}

func TestMinSizeFiltersSmallClusters(t *testing.T) {
	d := New()
	ls, err := d.BuildFromPoints("iso", "vorticity", 5, twoEvents(),
		fof.Params{LinkLength: 1.5, TimeLink: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ls {
		if l.Size < 2 {
			t.Errorf("undersized landmark recorded: %+v", l)
		}
	}
}

func TestQueryFilters(t *testing.T) {
	d, _ := buildTwo(t)
	any := Filter{Step: -1}

	all, err := d.Query(any)
	if err != nil || len(all) != 2 {
		t.Fatalf("query all: %d, %v", len(all), err)
	}
	// by intensity
	strong, _ := d.Query(Filter{MinPeak: 8, Step: -1})
	if len(strong) != 1 || strong[0].PeakValue != 9 {
		t.Errorf("MinPeak filter: %+v", strong)
	}
	// by size
	big, _ := d.Query(Filter{MinSize: 2, Step: -1})
	if len(big) != 1 || big[0].Size != 4 {
		t.Errorf("MinSize filter: %+v", big)
	}
	// by region
	near, _ := d.Query(Filter{Region: grid.Box{
		Lo: grid.Point{X: 0, Y: 0, Z: 0}, Hi: grid.Point{X: 10, Y: 10, Z: 10},
	}, Step: -1})
	if len(near) != 1 || near[0].PeakValue != 9 {
		t.Errorf("Region filter: %+v", near)
	}
	// by step: only event A is alive at step 1
	atStep1, _ := d.Query(Filter{Step: 1})
	if len(atStep1) != 1 || atStep1[0].PeakValue != 9 {
		t.Errorf("Step filter: %+v", atStep1)
	}
	// by dataset/field isolation
	none, _ := d.Query(Filter{Dataset: "other", Step: -1})
	if len(none) != 0 {
		t.Errorf("dataset filter leaked: %+v", none)
	}
	none, _ = d.Query(Filter{Field: "other", Step: -1})
	if len(none) != 0 {
		t.Errorf("field filter leaked: %+v", none)
	}
}

func TestEmptyDatabase(t *testing.T) {
	d := New()
	ls, err := d.Query(Filter{Step: -1})
	if err != nil || len(ls) != 0 {
		t.Errorf("empty query: %v %v", ls, err)
	}
	if d.Count() != 0 {
		t.Errorf("Count = %d", d.Count())
	}
	// building from no points is fine
	out, err := d.BuildFromPoints("d", "f", 1, nil, fof.Params{LinkLength: 1}, 1)
	if err != nil || len(out) != 0 {
		t.Errorf("empty build: %v %v", out, err)
	}
}

func TestFromClusterEmpty(t *testing.T) {
	l := FromCluster("d", "f", 1, fof.Cluster{})
	if l.Size != 0 {
		t.Errorf("empty cluster landmark: %+v", l)
	}
}
