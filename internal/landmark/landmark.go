// Package landmark implements the landmark database the paper's conclusion
// proposes: "the introduction of an application-aware cache for query
// results lays the groundwork for the creation of a landmark database. Such
// a database can store the locations of the highest vorticity regions in
// the dataset or more broadly regions of interest and their associated
// statistics."
//
// A landmark is one intense event: a connected cluster of thresholded
// points (from friends-of-friends over threshold-query results) reduced to
// its statistics — peak location and value, centroid, bounding box, size
// and time span. Landmarks are stored in a snapshot-isolation table (the
// same transaction layer as the semantic cache), so building and querying
// can proceed concurrently, and they can be queried by intensity, region
// and time without touching the raw data again.
package landmark

import (
	"fmt"
	"sort"

	"github.com/turbdb/turbdb/internal/fof"
	"github.com/turbdb/turbdb/internal/grid"
	"github.com/turbdb/turbdb/internal/txn"
)

// Landmark is one recorded region of interest and its statistics.
type Landmark struct {
	// ID is assigned by the database on insert.
	ID uint64
	// Dataset and Field identify what was thresholded.
	Dataset string
	Field   string
	// Threshold is the norm threshold that defined the region.
	Threshold float64
	// Peak is the most intense point of the region.
	Peak      grid.Point
	PeakStep  int
	PeakValue float64
	// Centroid is the mean position of the member points (in grid units,
	// not wrapped).
	Centroid [3]float64
	// BBox is the axis-aligned bounding box of the member points.
	BBox grid.Box
	// Size is the number of member points across all steps.
	Size int
	// FirstStep and LastStep span the event's lifetime.
	FirstStep, LastStep int
}

// Lifespan returns the number of time-steps the event is alive.
func (l Landmark) Lifespan() int { return l.LastStep - l.FirstStep + 1 }

// tableName is the landmark table in the transaction store.
const tableName = "landmarks"

// DB is a landmark database. Safe for concurrent use.
type DB struct {
	store *txn.DB
}

// New creates an empty landmark database.
func New() *DB {
	s := txn.New()
	s.CreateTable(tableName)
	return &DB{store: s}
}

// FromCluster reduces one FoF cluster to its landmark statistics.
func FromCluster(dataset, fieldName string, threshold float64, c fof.Cluster) Landmark {
	l := Landmark{
		Dataset: dataset, Field: fieldName, Threshold: threshold,
		Peak:      grid.Point{X: c.Peak.X, Y: c.Peak.Y, Z: c.Peak.Z},
		PeakStep:  c.Peak.T,
		PeakValue: float64(c.Peak.Value),
		Size:      len(c.Points),
		FirstStep: c.MinT, LastStep: c.MaxT,
	}
	if len(c.Points) == 0 {
		return l
	}
	l.BBox = grid.Box{
		Lo: grid.Point{X: c.Points[0].X, Y: c.Points[0].Y, Z: c.Points[0].Z},
		Hi: grid.Point{X: c.Points[0].X + 1, Y: c.Points[0].Y + 1, Z: c.Points[0].Z + 1},
	}
	var sx, sy, sz float64
	for _, p := range c.Points {
		sx += float64(p.X)
		sy += float64(p.Y)
		sz += float64(p.Z)
		l.BBox = union(l.BBox, p)
	}
	n := float64(len(c.Points))
	l.Centroid = [3]float64{sx / n, sy / n, sz / n}
	return l
}

// union grows a box to include a point.
func union(b grid.Box, p fof.Point) grid.Box {
	if p.X < b.Lo.X {
		b.Lo.X = p.X
	}
	if p.Y < b.Lo.Y {
		b.Lo.Y = p.Y
	}
	if p.Z < b.Lo.Z {
		b.Lo.Z = p.Z
	}
	if p.X+1 > b.Hi.X {
		b.Hi.X = p.X + 1
	}
	if p.Y+1 > b.Hi.Y {
		b.Hi.Y = p.Y + 1
	}
	if p.Z+1 > b.Hi.Z {
		b.Hi.Z = p.Z + 1
	}
	return b
}

// Insert records landmarks atomically and returns them with IDs assigned.
func (d *DB) Insert(ls []Landmark) ([]Landmark, error) {
	tx := d.store.Begin()
	defer tx.Abort()
	out := make([]Landmark, len(ls))
	for i, l := range ls {
		id, err := tx.Insert(tableName, l)
		if err != nil {
			return nil, err
		}
		l.ID = uint64(id)
		if err := tx.Update(tableName, id, l); err != nil {
			return nil, err
		}
		out[i] = l
	}
	if err := tx.Commit(); err != nil {
		return nil, fmt.Errorf("landmark: %w", err)
	}
	return out, nil
}

// Filter selects landmarks in queries; zero values mean "any".
type Filter struct {
	Dataset string
	Field   string
	// MinPeak keeps landmarks whose peak value is ≥ MinPeak.
	MinPeak float64
	// MinSize keeps landmarks with at least MinSize member points.
	MinSize int
	// Region keeps landmarks whose bounding box intersects it (zero = any).
	Region grid.Box
	// Step keeps landmarks alive at this time-step (-1 = any).
	Step int
}

// matches applies the filter.
func (f Filter) matches(l Landmark) bool {
	if f.Dataset != "" && l.Dataset != f.Dataset {
		return false
	}
	if f.Field != "" && l.Field != f.Field {
		return false
	}
	if l.PeakValue < f.MinPeak {
		return false
	}
	if l.Size < f.MinSize {
		return false
	}
	if f.Region != (grid.Box{}) && l.BBox.Intersect(f.Region).Empty() {
		return false
	}
	if f.Step >= 0 && (l.FirstStep > f.Step || l.LastStep < f.Step) {
		return false
	}
	return true
}

// Query returns matching landmarks sorted by descending peak value. Pass
// Filter{Step: -1} for no step constraint.
func (d *DB) Query(f Filter) ([]Landmark, error) {
	tx := d.store.Begin()
	defer tx.Abort()
	var out []Landmark
	err := tx.Scan(tableName, func(_ txn.RowID, data interface{}) bool {
		l := data.(Landmark)
		if f.matches(l) {
			out = append(out, l)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PeakValue != out[j].PeakValue { //lint:allow floateq exact tie-break keeps the order total and deterministic
			return out[i].PeakValue > out[j].PeakValue
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Count returns the number of stored landmarks.
func (d *DB) Count() int {
	return d.store.Stats()[tableName]
}

// BuildFromPoints clusters thresholded points (tagged with their time-step)
// and records one landmark per cluster of at least minSize points. Returns
// the inserted landmarks, most intense first.
func (d *DB) BuildFromPoints(dataset, fieldName string, threshold float64, pts []fof.Point, params fof.Params, minSize int) ([]Landmark, error) {
	clusters, err := fof.FindClusters(pts, params)
	if err != nil {
		return nil, err
	}
	var ls []Landmark
	for _, c := range clusters {
		if len(c.Points) < minSize {
			continue
		}
		ls = append(ls, FromCluster(dataset, fieldName, threshold, c))
	}
	return d.Insert(ls)
}
