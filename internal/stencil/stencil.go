// Package stencil implements the centered finite-difference kernels used to
// evaluate spatial derivatives of the stored simulation fields.
//
// Derived-field computations have local support: the value at a grid node
// depends on the stored field at all neighboring nodes within the kernel of
// computation (paper, Sec. 4). This package supplies first-derivative
// stencils of order 2, 4, 6 and 8; the order-4 stencil is exactly Eq. (2) of
// the paper:
//
//	df/dx|ₙ = (2/3Δx)[f(n+1) − f(n−1)] − (1/12Δx)[f(n+2) − f(n−2)]
//
// The kernel half-width determines the halo band that must be fetched from
// adjacent database nodes during distributed evaluation.
package stencil

import (
	"fmt"

	"github.com/turbdb/turbdb/internal/field"
	"github.com/turbdb/turbdb/internal/grid"
)

// Axis selects the differentiation direction.
type Axis int

// The three coordinate axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

// Stencil holds centered first-derivative coefficients. The derivative is
//
//	df/dx ≈ (1/Δx)·Σ_{k=1..HalfWidth} Coeffs[k−1]·(f(n+k) − f(n−k))
type Stencil struct {
	// Order is the formal order of accuracy (2, 4, 6 or 8).
	Order int
	// HalfWidth is the kernel half-width: the number of neighbors used on
	// each side, and therefore the halo band width in grid points.
	HalfWidth int
	// Coeffs[k-1] weights the pair f(n+k) − f(n−k).
	Coeffs []float64
}

var stencils = map[int]Stencil{
	2: {Order: 2, HalfWidth: 1, Coeffs: []float64{1.0 / 2}},
	4: {Order: 4, HalfWidth: 2, Coeffs: []float64{2.0 / 3, -1.0 / 12}},
	6: {Order: 6, HalfWidth: 3, Coeffs: []float64{3.0 / 4, -3.0 / 20, 1.0 / 60}},
	8: {Order: 8, HalfWidth: 4, Coeffs: []float64{4.0 / 5, -1.0 / 5, 4.0 / 105, -1.0 / 280}},
}

// Get returns the stencil of the requested order.
func Get(order int) (Stencil, error) {
	s, ok := stencils[order]
	if !ok {
		return Stencil{}, fmt.Errorf("stencil: unsupported finite-difference order %d (want 2, 4, 6 or 8)", order)
	}
	return s, nil
}

// MustGet is Get for orders known statically; it panics on invalid order.
func MustGet(order int) Stencil {
	s, err := Get(order)
	if err != nil {
		panic(err)
	}
	return s
}

// Orders lists the supported finite-difference orders, ascending.
func Orders() []int { return []int{2, 4, 6, 8} }

// Deriv evaluates ∂(component c)/∂(axis) of the block's field at point p
// with grid spacing dx. The block must contain p with a margin of HalfWidth
// points along the axis (the halo); this is the caller's contract and is not
// rechecked per point.
func (s Stencil) Deriv(bl *field.Block, p grid.Point, c int, axis Axis, dx float64) float64 {
	var sum float64
	for k := 1; k <= s.HalfWidth; k++ {
		var plus, minus grid.Point
		switch axis {
		case AxisX:
			plus, minus = p.Add(k, 0, 0), p.Add(-k, 0, 0)
		case AxisY:
			plus, minus = p.Add(0, k, 0), p.Add(0, -k, 0)
		default:
			plus, minus = p.Add(0, 0, k), p.Add(0, 0, -k)
		}
		sum += s.Coeffs[k-1] * (bl.At(plus, c) - bl.At(minus, c))
	}
	return sum / dx
}

// Gradient evaluates the full gradient tensor G[i][j] = ∂u_i/∂x_j of a
// 3-component block at p. The block must contain the halo around p on all
// axes.
func (s Stencil) Gradient(bl *field.Block, p grid.Point, dx float64) [3][3]float64 {
	var g [3][3]float64
	for i := 0; i < 3; i++ {
		g[i][0] = s.Deriv(bl, p, i, AxisX, dx)
		g[i][1] = s.Deriv(bl, p, i, AxisY, dx)
		g[i][2] = s.Deriv(bl, p, i, AxisZ, dx)
	}
	return g
}

// DerivRow evaluates ∂(component c)/∂(axis) at the n x-consecutive grid
// points p, p+(1,0,0), …, p+(n−1,0,0), writing the results into out[:n].
// The block must contain the whole run with a HalfWidth margin along the
// axis. The flat strides are computed once per row and the accumulation
// replays Deriv's float64 operation sequence exactly, so DerivRow is
// bit-for-bit identical to n calls of Deriv.
//
//turbdb:rowkernel
func (s Stencil) DerivRow(bl *field.Block, p grid.Point, n, c int, axis Axis, dx float64, out []float64) {
	s.derivRow(bl, p, n, c, axis, dx, out[:n], 1)
}

// GradientRow evaluates the gradient tensor of a 3-component block at the n
// x-consecutive points starting at p, writing G[r][c] = ∂u_r/∂x_c into
// out[9·i + 3·r + c] for the i-th point. out must have length ≥ 9·n.
//
//turbdb:rowkernel
func (s Stencil) GradientRow(bl *field.Block, p grid.Point, n int, dx float64, out []float64) {
	if n <= 0 {
		return
	}
	_ = out[9*n-1]
	for r := 0; r < 3; r++ {
		s.derivRow(bl, p, n, r, AxisX, dx, out[3*r:], 9)
		s.derivRow(bl, p, n, r, AxisY, dx, out[3*r+1:], 9)
		s.derivRow(bl, p, n, r, AxisZ, dx, out[3*r+2:], 9)
	}
}

// derivRow is the shared row kernel: it writes the derivative at the i-th
// point of the run to out[i·ostride]. The per-tap flat offset along the
// differentiation axis and the x step are hoisted out of the loop, and the
// common half-widths are unrolled. Each per-point accumulation mirrors
// Deriv (sum starts at zero, taps added in ascending k, one final division
// by dx) so results match the per-point path bit-for-bit.
//
//turbdb:rowkernel
func (s Stencil) derivRow(bl *field.Block, p grid.Point, n, c int, axis Axis, dx float64, out []float64, ostride int) {
	if n <= 0 {
		return
	}
	sx, sy, sz := bl.Strides()
	tap := sx
	switch axis {
	case AxisY:
		tap = sy
	case AxisZ:
		tap = sz
	}
	d := bl.Data
	base := bl.Offset(p, c)
	switch s.HalfWidth {
	case 1:
		c1 := s.Coeffs[0]
		t1 := tap
		for i, idx := 0, base; i < n; i, idx = i+1, idx+sx {
			sum := 0.0
			sum += c1 * (float64(d[idx+t1]) - float64(d[idx-t1]))
			out[i*ostride] = sum / dx
		}
	case 2:
		c1, c2 := s.Coeffs[0], s.Coeffs[1]
		t1, t2 := tap, 2*tap
		for i, idx := 0, base; i < n; i, idx = i+1, idx+sx {
			sum := 0.0
			sum += c1 * (float64(d[idx+t1]) - float64(d[idx-t1]))
			sum += c2 * (float64(d[idx+t2]) - float64(d[idx-t2]))
			out[i*ostride] = sum / dx
		}
	case 3:
		c1, c2, c3 := s.Coeffs[0], s.Coeffs[1], s.Coeffs[2]
		t1, t2, t3 := tap, 2*tap, 3*tap
		for i, idx := 0, base; i < n; i, idx = i+1, idx+sx {
			sum := 0.0
			sum += c1 * (float64(d[idx+t1]) - float64(d[idx-t1]))
			sum += c2 * (float64(d[idx+t2]) - float64(d[idx-t2]))
			sum += c3 * (float64(d[idx+t3]) - float64(d[idx-t3]))
			out[i*ostride] = sum / dx
		}
	case 4:
		c1, c2, c3, c4 := s.Coeffs[0], s.Coeffs[1], s.Coeffs[2], s.Coeffs[3]
		t1, t2, t3, t4 := tap, 2*tap, 3*tap, 4*tap
		for i, idx := 0, base; i < n; i, idx = i+1, idx+sx {
			sum := 0.0
			sum += c1 * (float64(d[idx+t1]) - float64(d[idx-t1]))
			sum += c2 * (float64(d[idx+t2]) - float64(d[idx-t2]))
			sum += c3 * (float64(d[idx+t3]) - float64(d[idx-t3]))
			sum += c4 * (float64(d[idx+t4]) - float64(d[idx-t4]))
			out[i*ostride] = sum / dx
		}
	default:
		for i, idx := 0, base; i < n; i, idx = i+1, idx+sx {
			sum := 0.0
			for k := 1; k <= s.HalfWidth; k++ {
				sum += s.Coeffs[k-1] * (float64(d[idx+k*tap]) - float64(d[idx-k*tap]))
			}
			out[i*ostride] = sum / dx
		}
	}
}
