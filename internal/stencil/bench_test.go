package stencil

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/turbdb/turbdb/internal/grid"
)

// benchRun is the row length per DerivRow/GradientRow call — one atom side
// would be 8; 16 amortizes the per-row setup the way scanShard's extended
// blocks do for multi-atom runs.
const benchRun = 16

// BenchmarkDerivRow measures the raw cost of one finite-difference
// derivative per point, per FD order, on the unrolled row kernel versus the
// per-point Deriv baseline.
func BenchmarkDerivRow(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, order := range Orders() {
		s := MustGet(order)
		inner := grid.Box{Hi: grid.Point{X: benchRun, Y: 1, Z: 1}}
		bl := randomBlock(rng, inner.Expand(s.HalfWidth), 3)
		out := make([]float64, benchRun)
		b.Run(fmt.Sprintf("o%d/perpoint", order), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for x := 0; x < benchRun; x++ {
					out[x] = s.Deriv(bl, grid.Point{X: x}, 0, AxisX, 0.01)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*benchRun), "ns/point")
		})
		b.Run(fmt.Sprintf("o%d/row", order), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.DerivRow(bl, grid.Point{}, benchRun, 0, AxisX, 0.01, out)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*benchRun), "ns/point")
		})
	}
}

// BenchmarkGradientRow measures the full 3×3 velocity-gradient row kernel
// (9 derivatives per point), the dominant cost of qcriterion/rinvariant/
// gradnorm scans.
func BenchmarkGradientRow(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	for _, order := range Orders() {
		s := MustGet(order)
		inner := grid.Box{Hi: grid.Point{X: benchRun, Y: 1, Z: 1}}
		bl := randomBlock(rng, inner.Expand(s.HalfWidth), 3)
		out := make([]float64, 9*benchRun)
		b.Run(fmt.Sprintf("o%d", order), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.GradientRow(bl, grid.Point{}, benchRun, 0.01, out)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*benchRun), "ns/point")
		})
	}
}
