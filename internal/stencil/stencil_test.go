package stencil

import (
	"math"
	"testing"

	"github.com/turbdb/turbdb/internal/field"
	"github.com/turbdb/turbdb/internal/grid"
)

func TestGetOrders(t *testing.T) {
	for _, o := range Orders() {
		s, err := Get(o)
		if err != nil {
			t.Fatalf("Get(%d): %v", o, err)
		}
		if s.Order != o || s.HalfWidth != o/2 || len(s.Coeffs) != o/2 {
			t.Errorf("Get(%d) = %+v", o, s)
		}
	}
	for _, o := range []int{0, 1, 3, 5, 10} {
		if _, err := Get(o); err == nil {
			t.Errorf("Get(%d) accepted invalid order", o)
		}
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet(3) did not panic")
		}
	}()
	MustGet(3)
}

// Each order-p stencil must differentiate polynomials up to degree p exactly
// (centered stencils gain a degree on even polynomials).
func TestExactOnPolynomials(t *testing.T) {
	for _, order := range Orders() {
		s := MustGet(order)
		h := s.HalfWidth
		// block over x ∈ [-h, h] with one off-axis layer; poly along x
		b := grid.Box{Lo: grid.Point{X: -h, Y: 0, Z: 0}, Hi: grid.Point{X: h + 1, Y: 1, Z: 1}}
		for deg := 0; deg <= order; deg++ {
			bl := field.NewBlock(b, 1)
			bl.Fill(func(p grid.Point, vals []float64) {
				vals[0] = math.Pow(float64(p.X), float64(deg))
			})
			got := s.Deriv(bl, grid.Point{}, 0, AxisX, 1.0)
			want := 0.0
			if deg == 1 {
				want = 1.0 // d/dx x = 1 at x=0; higher powers vanish at 0
			}
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("order %d, x^%d: deriv at 0 = %g, want %g", order, deg, got, want)
			}
		}
	}
}

// Convergence: error on sin(x) must shrink as h^order.
func TestConvergenceOrder(t *testing.T) {
	for _, order := range Orders() {
		s := MustGet(order)
		hw := s.HalfWidth
		errAt := func(dx float64) float64 {
			b := grid.Box{Lo: grid.Point{X: -hw, Y: 0, Z: 0}, Hi: grid.Point{X: hw + 1, Y: 1, Z: 1}}
			bl := field.NewBlock(b, 1)
			x0 := 0.7 // evaluate away from symmetry points
			bl.Fill(func(p grid.Point, vals []float64) {
				vals[0] = math.Sin(x0 + float64(p.X)*dx)
			})
			got := s.Deriv(bl, grid.Point{}, 0, AxisX, dx)
			return math.Abs(got - math.Cos(x0))
		}
		e1 := errAt(0.1)
		e2 := errAt(0.05)
		if e1 == 0 || e2 == 0 {
			continue // already at float32 noise floor
		}
		rate := math.Log2(e1 / e2)
		// float32 storage limits achievable accuracy for high orders; accept
		// the theoretical rate within a generous tolerance, or errors that
		// are already at the noise floor.
		if rate < float64(order)-0.9 && e2 > 1e-6 {
			t.Errorf("order %d: convergence rate %.2f (errors %g → %g)", order, rate, e1, e2)
		}
	}
}

func TestDerivAllAxes(t *testing.T) {
	// f(x,y,z) = 2x + 3y − 5z: gradient is (2, 3, −5) everywhere.
	s := MustGet(4)
	h := s.HalfWidth
	b := grid.Box{
		Lo: grid.Point{X: -h, Y: -h, Z: -h},
		Hi: grid.Point{X: h + 1, Y: h + 1, Z: h + 1},
	}
	bl := field.NewBlock(b, 1)
	bl.Fill(func(p grid.Point, vals []float64) {
		vals[0] = 2*float64(p.X) + 3*float64(p.Y) - 5*float64(p.Z)
	})
	p := grid.Point{}
	if got := s.Deriv(bl, p, 0, AxisX, 1); math.Abs(got-2) > 1e-5 {
		t.Errorf("∂/∂x = %g", got)
	}
	if got := s.Deriv(bl, p, 0, AxisY, 1); math.Abs(got-3) > 1e-5 {
		t.Errorf("∂/∂y = %g", got)
	}
	if got := s.Deriv(bl, p, 0, AxisZ, 1); math.Abs(got+5) > 1e-5 {
		t.Errorf("∂/∂z = %g", got)
	}
}

func TestGradientTensor(t *testing.T) {
	// u = (a·y, b·z, c·x) has gradient rows (0,a,0), (0,0,b), (c,0,0).
	a, bcoef, c := 1.5, -2.0, 0.75
	s := MustGet(6)
	h := s.HalfWidth
	b := grid.Box{
		Lo: grid.Point{X: -h, Y: -h, Z: -h},
		Hi: grid.Point{X: h + 1, Y: h + 1, Z: h + 1},
	}
	bl := field.NewBlock(b, 3)
	bl.Fill(func(p grid.Point, vals []float64) {
		vals[0] = a * float64(p.Y)
		vals[1] = bcoef * float64(p.Z)
		vals[2] = c * float64(p.X)
	})
	g := s.Gradient(bl, grid.Point{}, 1)
	want := [3][3]float64{{0, a, 0}, {0, 0, bcoef}, {c, 0, 0}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(g[i][j]-want[i][j]) > 1e-5 {
				t.Errorf("G[%d][%d] = %g, want %g", i, j, g[i][j], want[i][j])
			}
		}
	}
}

// The order-4 stencil must reproduce the paper's Eq. (2) coefficients.
func TestOrder4MatchesPaperEq2(t *testing.T) {
	s := MustGet(4)
	if math.Abs(s.Coeffs[0]-2.0/3) > 1e-15 || math.Abs(s.Coeffs[1]+1.0/12) > 1e-15 {
		t.Errorf("order-4 coefficients %v differ from Eq. (2)", s.Coeffs)
	}
}

func TestDxScaling(t *testing.T) {
	// halving dx doubles the derivative of the same integer samples
	s := MustGet(2)
	b := grid.Box{Lo: grid.Point{X: -1, Y: 0, Z: 0}, Hi: grid.Point{X: 2, Y: 1, Z: 1}}
	bl := field.NewBlock(b, 1)
	bl.Fill(func(p grid.Point, vals []float64) { vals[0] = float64(p.X) })
	d1 := s.Deriv(bl, grid.Point{}, 0, AxisX, 1)
	d2 := s.Deriv(bl, grid.Point{}, 0, AxisX, 0.5)
	if math.Abs(d2-2*d1) > 1e-12 {
		t.Errorf("dx scaling wrong: %g vs %g", d1, d2)
	}
}

func BenchmarkGradient(b *testing.B) {
	s := MustGet(4)
	h := s.HalfWidth
	bx := grid.Box{
		Lo: grid.Point{X: -h, Y: -h, Z: -h},
		Hi: grid.Point{X: h + 1, Y: h + 1, Z: h + 1},
	}
	bl := field.NewBlock(bx, 3)
	bl.Fill(func(p grid.Point, vals []float64) {
		vals[0] = float64(p.X * p.Y)
		vals[1] = float64(p.Y * p.Z)
		vals[2] = float64(p.Z * p.X)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Gradient(bl, grid.Point{}, 1)
	}
}
