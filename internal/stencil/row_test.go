package stencil

import (
	"math"
	"math/rand"
	"testing"

	"github.com/turbdb/turbdb/internal/field"
	"github.com/turbdb/turbdb/internal/grid"
)

// randomBlock builds a block with nc components over box filled with
// normally distributed values (float32-truncated, as stored data are).
func randomBlock(rng *rand.Rand, box grid.Box, nc int) *field.Block {
	bl := field.NewBlock(box, nc)
	for i := range bl.Data {
		bl.Data[i] = float32(rng.NormFloat64())
	}
	return bl
}

// The row kernels are drop-in replacements for per-point evaluation: the
// engine relies on DerivRow being bit-for-bit identical to n calls of
// Deriv, for every order, axis, component and run geometry.
func TestDerivRowMatchesDerivBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, order := range Orders() {
		s := MustGet(order)
		h := s.HalfWidth
		for trial := 0; trial < 30; trial++ {
			nx := 1 + rng.Intn(12)
			ny := 1 + rng.Intn(4)
			nz := 1 + rng.Intn(4)
			lo := grid.Point{X: rng.Intn(9) - 4, Y: rng.Intn(9) - 4, Z: rng.Intn(9) - 4}
			inner := grid.Box{Lo: lo, Hi: lo.Add(nx, ny, nz)}
			nc := 1 + rng.Intn(3)
			bl := randomBlock(rng, inner.Expand(h), nc)
			dx := 0.05 + rng.Float64()
			out := make([]float64, nx)
			for _, axis := range []Axis{AxisX, AxisY, AxisZ} {
				for c := 0; c < nc; c++ {
					p := grid.Point{X: lo.X, Y: lo.Y + rng.Intn(ny), Z: lo.Z + rng.Intn(nz)}
					s.DerivRow(bl, p, nx, c, axis, dx, out)
					for i := 0; i < nx; i++ {
						want := s.Deriv(bl, p.Add(i, 0, 0), c, axis, dx)
						if math.Float64bits(out[i]) != math.Float64bits(want) {
							t.Fatalf("order %d axis %v c %d: DerivRow[%d] = %x, Deriv = %x",
								order, axis, c, i, math.Float64bits(out[i]), math.Float64bits(want))
						}
					}
				}
			}
		}
	}
}

func TestGradientRowMatchesGradientBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, order := range Orders() {
		s := MustGet(order)
		h := s.HalfWidth
		for trial := 0; trial < 20; trial++ {
			nx := 1 + rng.Intn(10)
			lo := grid.Point{X: rng.Intn(7) - 3, Y: rng.Intn(7) - 3, Z: rng.Intn(7) - 3}
			inner := grid.Box{Lo: lo, Hi: lo.Add(nx, 3, 3)}
			bl := randomBlock(rng, inner.Expand(h), 3)
			dx := 0.05 + rng.Float64()
			out := make([]float64, 9*nx)
			p := grid.Point{X: lo.X, Y: lo.Y + rng.Intn(3), Z: lo.Z + rng.Intn(3)}
			s.GradientRow(bl, p, nx, dx, out)
			for i := 0; i < nx; i++ {
				want := s.Gradient(bl, p.Add(i, 0, 0), dx)
				for r := 0; r < 3; r++ {
					for c := 0; c < 3; c++ {
						got := out[9*i+3*r+c]
						if math.Float64bits(got) != math.Float64bits(want[r][c]) {
							t.Fatalf("order %d: GradientRow[%d][%d][%d] = %g, Gradient = %g",
								order, i, r, c, got, want[r][c])
						}
					}
				}
			}
		}
	}
}

// A one-point run is the degenerate row; zero-length runs must be no-ops.
func TestDerivRowEdgeLengths(t *testing.T) {
	s := MustGet(4)
	bl := randomBlock(rand.New(rand.NewSource(3)), grid.Box{Lo: grid.Point{X: -2, Y: -2, Z: -2}, Hi: grid.Point{X: 3, Y: 3, Z: 3}}, 1)
	out := []float64{math.NaN()}
	s.DerivRow(bl, grid.Point{}, 0, 0, AxisX, 1, out[:0])
	if !math.IsNaN(out[0]) {
		t.Error("DerivRow with n=0 wrote to out")
	}
	s.DerivRow(bl, grid.Point{}, 1, 0, AxisY, 1, out)
	if math.Float64bits(out[0]) != math.Float64bits(s.Deriv(bl, grid.Point{}, 0, AxisY, 1)) {
		t.Error("DerivRow with n=1 differs from Deriv")
	}
}
