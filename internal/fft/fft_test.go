package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(N²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

func maxAbsDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max diff vs naive DFT = %g", n, d)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 128, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		if err := Forward(y); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(y); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(x, y); d > 1e-10*float64(n) {
			t.Errorf("n=%d: round trip error %g", n, d)
		}
	}
}

func TestNonPowerOfTwoRejected(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Error("Forward accepted length 3")
	}
	if err := Inverse(make([]complex128, 12)); err == nil {
		t.Error("Inverse accepted length 12")
	}
	if _, err := NewGrid3(3); err == nil {
		t.Error("NewGrid3 accepted side 3")
	}
	if _, err := NewGrid3(0); err == nil {
		t.Error("NewGrid3 accepted side 0")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if err := Forward(nil); err != nil {
		t.Errorf("Forward(nil) = %v", err)
	}
	x := []complex128{complex(3, -4)}
	if err := Forward(x); err != nil || x[0] != complex(3, -4) {
		t.Errorf("Forward of singleton changed value: %v %v", x, err)
	}
}

// A pure sinusoid must transform to a single spectral spike.
func TestSinusoidSpike(t *testing.T) {
	n := 64
	kWant := 5
	x := make([]complex128, n)
	for j := 0; j < n; j++ {
		angle := 2 * math.Pi * float64(kWant) * float64(j) / float64(n)
		x[j] = cmplx.Exp(complex(0, angle))
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		want := 0.0
		if k == kWant {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(x[k])-want) > 1e-9 {
			t.Errorf("bin %d: |X| = %g, want %g", k, cmplx.Abs(x[k]), want)
		}
	}
}

// Parseval: Σ|x|² == (1/N)·Σ|X|².
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 256
	x := make([]complex128, n)
	var sumTime float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		sumTime += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	var sumFreq float64
	for _, v := range x {
		sumFreq += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(sumTime-sumFreq/float64(n)) > 1e-8*sumTime {
		t.Errorf("Parseval violated: time %g vs freq/N %g", sumTime, sumFreq/float64(n))
	}
}

func TestGrid3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := NewGrid3(8)
	if err != nil {
		t.Fatal(err)
	}
	orig := make([]complex128, len(g.Data))
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
		orig[i] = g.Data[i]
	}
	if err := g.Forward(); err != nil {
		t.Fatal(err)
	}
	if err := g.Inverse(); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(g.Data, orig); d > 1e-10 {
		t.Errorf("3-D round trip error %g", d)
	}
}

// A 3-D plane wave must produce a single spectral spike at its wavevector.
func TestGrid3PlaneWave(t *testing.T) {
	n := 8
	g, err := NewGrid3(n)
	if err != nil {
		t.Fatal(err)
	}
	kx, ky, kz := 2, 3, 1
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				angle := 2 * math.Pi * float64(kx*x+ky*y+kz*z) / float64(n)
				g.Set(x, y, z, cmplx.Exp(complex(0, angle)))
			}
		}
	}
	if err := g.Forward(); err != nil {
		t.Fatal(err)
	}
	n3 := float64(n * n * n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				want := 0.0
				if x == kx && y == ky && z == kz {
					want = n3
				}
				if math.Abs(cmplx.Abs(g.At(x, y, z))-want) > 1e-8 {
					t.Fatalf("bin (%d,%d,%d): |X| = %g, want %g",
						x, y, z, cmplx.Abs(g.At(x, y, z)), want)
				}
			}
		}
	}
}

func TestWaveNumber(t *testing.T) {
	n := 8
	want := []int{0, 1, 2, 3, -4, -3, -2, -1}
	for k := 0; k < n; k++ {
		if got := WaveNumber(k, n); got != want[k] {
			t.Errorf("WaveNumber(%d,%d) = %d, want %d", k, n, got, want[k])
		}
	}
}

func TestGrid3Accessors(t *testing.T) {
	g, _ := NewGrid3(4)
	g.Set(1, 2, 3, complex(7, -7))
	if got := g.At(1, 2, 3); got != complex(7, -7) {
		t.Errorf("At = %v", got)
	}
	if got := g.Data[(3*4+2)*4+1]; got != complex(7, -7) {
		t.Errorf("layout mismatch: %v", got)
	}
}

func BenchmarkForward1D_1024(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Forward(x)
	}
}

func BenchmarkGrid3_64(b *testing.B) {
	g, _ := NewGrid3(64)
	rng := rand.New(rand.NewSource(6))
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Forward()
		_ = g.Inverse()
	}
}
