// Package fft implements an iterative radix-2 complex fast Fourier transform
// in one and three dimensions.
//
// The synthetic-turbulence generator (internal/synth) builds velocity and
// magnetic fields in spectral space — random Fourier modes shaped by a
// prescribed energy spectrum and projected onto the divergence-free
// subspace — and transforms them to physical space with the inverse 3-D FFT
// here. Only power-of-two sizes are supported, which matches the 2ⁿ grids
// used throughout the system.
//
// Conventions: Forward computes X[k] = Σ_n x[n]·exp(−2πi·kn/N) (no scaling);
// Inverse computes x[n] = (1/N)·Σ_k X[k]·exp(+2πi·kn/N), so
// Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Forward performs an in-place forward FFT of x. len(x) must be a power of
// two.
func Forward(x []complex128) error { return transform(x, -1) }

// Inverse performs an in-place inverse FFT of x, including the 1/N scaling.
// len(x) must be a power of two.
func Inverse(x []complex128) error {
	if err := transform(x, +1); err != nil {
		return err
	}
	scale := 1 / float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])*scale, imag(x[i])*scale)
	}
	return nil
}

// transform runs the iterative Cooley–Tukey butterfly with sign = −1 for
// forward and +1 for inverse (unscaled).
func transform(x []complex128, sign float64) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// bit-reversal permutation
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// butterflies
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		theta := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(theta), math.Sin(theta))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return nil
}

// Grid3 is a dense 3-D complex array of side N (N³ elements) indexed as
// data[(z*N+y)*N+x]. It supports in-place forward/inverse 3-D transforms.
type Grid3 struct {
	N    int
	Data []complex128
}

// NewGrid3 allocates an N×N×N complex grid. N must be a power of two.
func NewGrid3(n int) (*Grid3, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: grid side %d is not a positive power of two", n)
	}
	return &Grid3{N: n, Data: make([]complex128, n*n*n)}, nil
}

// At returns the element at (x, y, z).
func (g *Grid3) At(x, y, z int) complex128 { return g.Data[(z*g.N+y)*g.N+x] }

// Set stores v at (x, y, z).
func (g *Grid3) Set(x, y, z int, v complex128) { g.Data[(z*g.N+y)*g.N+x] = v }

// Forward performs an in-place 3-D forward FFT.
func (g *Grid3) Forward() error { return g.transform3(Forward) }

// Inverse performs an in-place 3-D inverse FFT (scaled by 1/N³ overall).
func (g *Grid3) Inverse() error { return g.transform3(Inverse) }

// transform3 applies the given 1-D transform along x, then y, then z.
func (g *Grid3) transform3(t func([]complex128) error) error {
	n := g.N
	line := make([]complex128, n)
	// along x: contiguous
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			row := g.Data[(z*n+y)*n : (z*n+y)*n+n]
			if err := t(row); err != nil {
				return err
			}
		}
	}
	// along y: stride n
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			base := z*n*n + x
			for y := 0; y < n; y++ {
				line[y] = g.Data[base+y*n]
			}
			if err := t(line); err != nil {
				return err
			}
			for y := 0; y < n; y++ {
				g.Data[base+y*n] = line[y]
			}
		}
	}
	// along z: stride n²
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			base := y*n + x
			for z := 0; z < n; z++ {
				line[z] = g.Data[base+z*n*n]
			}
			if err := t(line); err != nil {
				return err
			}
			for z := 0; z < n; z++ {
				g.Data[base+z*n*n] = line[z]
			}
		}
	}
	return nil
}

// WaveNumber maps a DFT index k in [0, N) to the signed integer wavenumber
// in [−N/2, N/2): indices above N/2 alias to negative frequencies.
func WaveNumber(k, n int) int {
	if k >= n/2 {
		return k - n
	}
	return k
}
