// Package netmodel models the network paths of the analysis environment on
// the discrete-event simulation kernel: mediator ↔ database-node links on
// the cluster fabric, node ↔ node links for halo exchange, and the
// mediator ↔ user WAN path.
//
// The paper's breakdowns (Fig. 9) separate "mediator + DB communication"
// from "mediator–user communication"; both grow proportionally to the result
// size, and for cache hits the user transfer dominates the whole query. A
// link here is a latency + bandwidth pipe serialized per direction.
package netmodel

import (
	"fmt"
	"time"

	"github.com/turbdb/turbdb/internal/sim"
)

// Spec describes one direction of a network path.
type Spec struct {
	Name string
	// Latency is the one-way propagation + protocol handshake time charged
	// per transfer.
	Latency time.Duration
	// Bandwidth is in bytes/second.
	Bandwidth float64
	// Streams is how many transfers can proceed concurrently at full rate
	// (e.g. a switched fabric port per node vs a single shared uplink).
	Streams int
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Bandwidth <= 0 {
		return fmt.Errorf("netmodel: %s: bandwidth must be positive", s.Name)
	}
	if s.Latency < 0 {
		return fmt.Errorf("netmodel: %s: negative latency", s.Name)
	}
	if s.Streams < 1 {
		return fmt.Errorf("netmodel: %s: streams must be ≥ 1", s.Name)
	}
	return nil
}

// ClusterLink returns the default model of the mediator↔node and node↔node
// fabric: 0.3 ms latency, 1 Gb/s, one stream per link (each link is a
// distinct Link instance, so the fabric scales with node count).
func ClusterLink(name string) Spec {
	return Spec{Name: name, Latency: 300 * time.Microsecond, Bandwidth: 125e6, Streams: 1}
}

// UserLink returns the default model of the mediator↔user path: 2 ms
// latency, 100 Mb/s, one stream (results are streamed back through one
// Web-service response). This models a user on a fast research network;
// the slow-WAN scenario of the paper's local-evaluation comparison is
// modeled separately by the experiments' LocalBaseline link.
func UserLink(name string) Spec {
	return Spec{Name: name, Latency: 2 * time.Millisecond, Bandwidth: 12.5e6, Streams: 1}
}

// Link is one direction of a network path in the simulation.
type Link struct {
	spec Spec
	res  *sim.Resource

	transfers int64
	bytes     int64
}

// New creates a link on the kernel.
func New(k *sim.Kernel, spec Spec) (*Link, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Link{spec: spec, res: k.NewResource(spec.Name, spec.Streams)}, nil
}

// Spec returns the link description.
func (l *Link) Spec() Spec { return l.spec }

// TransferTime returns latency + n/bandwidth, excluding queueing.
func (l *Link) TransferTime(n int) time.Duration {
	return l.spec.Latency + time.Duration(float64(n)/l.spec.Bandwidth*float64(time.Second))
}

// Transfer moves n bytes across the link, blocking the process for queueing
// plus service time. Zero-byte transfers still pay latency (request/response
// envelopes).
func (l *Link) Transfer(p *sim.Proc, n int) {
	if n < 0 {
		n = 0
	}
	p.Use(l.res, l.TransferTime(n))
	l.transfers++
	l.bytes += int64(n)
}

// Stats reports cumulative transfer count and bytes moved.
func (l *Link) Stats() (transfers, bytes int64) { return l.transfers, l.bytes }
