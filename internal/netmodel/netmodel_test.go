package netmodel

import (
	"testing"
	"time"

	"github.com/turbdb/turbdb/internal/sim"
)

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Name: "x", Bandwidth: 0, Streams: 1}).Validate(); err == nil {
		t.Error("accepted zero bandwidth")
	}
	if err := (Spec{Name: "x", Bandwidth: 1, Streams: 0}).Validate(); err == nil {
		t.Error("accepted zero streams")
	}
	if err := (Spec{Name: "x", Bandwidth: 1, Streams: 1, Latency: -1}).Validate(); err == nil {
		t.Error("accepted negative latency")
	}
	if err := ClusterLink("c").Validate(); err != nil {
		t.Errorf("ClusterLink invalid: %v", err)
	}
	if err := UserLink("u").Validate(); err != nil {
		t.Errorf("UserLink invalid: %v", err)
	}
}

func TestTransferTime(t *testing.T) {
	k := sim.New()
	l, err := New(k, Spec{Name: "l", Latency: 10 * time.Millisecond, Bandwidth: 1e6, Streams: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 10ms + 5000/1e6 s = 15ms
	if got := l.TransferTime(5000); got != 15*time.Millisecond {
		t.Errorf("TransferTime = %v, want 15ms", got)
	}
}

func TestSerializedTransfers(t *testing.T) {
	k := sim.New()
	l, _ := New(k, Spec{Name: "l", Latency: time.Millisecond, Bandwidth: 1e9, Streams: 1})
	for i := 0; i < 3; i++ {
		k.Go("t", func(p *sim.Proc) { l.Transfer(p, 0) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 3*time.Millisecond {
		t.Errorf("3 transfers took %v, want 3ms", k.Now())
	}
	n, b := l.Stats()
	if n != 3 || b != 0 {
		t.Errorf("stats = %d, %d", n, b)
	}
}

func TestMultiStreamParallel(t *testing.T) {
	k := sim.New()
	l, _ := New(k, Spec{Name: "l", Latency: time.Millisecond, Bandwidth: 1e9, Streams: 4})
	for i := 0; i < 4; i++ {
		k.Go("t", func(p *sim.Proc) { l.Transfer(p, 0) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != time.Millisecond {
		t.Errorf("parallel transfers took %v, want 1ms", k.Now())
	}
}

func TestNegativeBytesClamped(t *testing.T) {
	k := sim.New()
	l, _ := New(k, Spec{Name: "l", Latency: time.Millisecond, Bandwidth: 1e6, Streams: 1})
	k.Go("t", func(p *sim.Proc) { l.Transfer(p, -100) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != time.Millisecond {
		t.Errorf("negative transfer took %v, want latency only", k.Now())
	}
	_, b := l.Stats()
	if b != 0 {
		t.Errorf("negative bytes counted: %d", b)
	}
}

func TestResultSizeProportionality(t *testing.T) {
	// Larger result sets must take proportionally longer — the Fig. 9
	// mediator-user bars grow with the number of points returned.
	k := sim.New()
	l, _ := New(k, UserLink("user"))
	small := l.TransferTime(4247 * 16)
	large := l.TransferTime(909274 * 16)
	if large <= small {
		t.Errorf("large transfer (%v) not slower than small (%v)", large, small)
	}
}
