package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTestDB(t testing.TB) *DB {
	t.Helper()
	db := New()
	db.CreateTable("t")
	return db
}

func mustInsert(t testing.TB, tx *Tx, table string, v interface{}) RowID {
	t.Helper()
	id, err := tx.Insert(table, v)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func mustCommit(t testing.TB, tx *Tx) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGetCommit(t *testing.T) {
	db := newTestDB(t)
	tx := db.Begin()
	id := mustInsert(t, tx, "t", "hello")
	// own write visible before commit
	if v, ok, err := tx.Get("t", id); err != nil || !ok || v != "hello" {
		t.Fatalf("own write: %v %v %v", v, ok, err)
	}
	mustCommit(t, tx)
	tx2 := db.Begin()
	if v, ok, _ := tx2.Get("t", id); !ok || v != "hello" {
		t.Fatalf("committed value not visible: %v %v", v, ok)
	}
	tx2.Abort()
}

func TestUncommittedInvisible(t *testing.T) {
	db := newTestDB(t)
	writer := db.Begin()
	id := mustInsert(t, writer, "t", 1)
	reader := db.Begin()
	if _, ok, _ := reader.Get("t", id); ok {
		t.Fatal("dirty read: uncommitted insert visible")
	}
	mustCommit(t, writer)
	// reader began before commit → still invisible (snapshot)
	if _, ok, _ := reader.Get("t", id); ok {
		t.Fatal("snapshot violated: commit after begin visible")
	}
	reader.Abort()
	// new transaction sees it
	later := db.Begin()
	if _, ok, _ := later.Get("t", id); !ok {
		t.Fatal("later snapshot missing committed row")
	}
	later.Abort()
}

func TestRepeatableRead(t *testing.T) {
	db := newTestDB(t)
	setup := db.Begin()
	id := mustInsert(t, setup, "t", "v1")
	mustCommit(t, setup)

	reader := db.Begin()
	v, _, _ := reader.Get("t", id)
	if v != "v1" {
		t.Fatalf("initial read %v", v)
	}

	writer := db.Begin()
	if err := writer.Update("t", id, "v2"); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, writer)

	// reader must still see v1
	if v, _, _ := reader.Get("t", id); v != "v1" {
		t.Fatalf("non-repeatable read: got %v", v)
	}
	reader.Abort()
}

func TestFirstCommitterWins(t *testing.T) {
	db := newTestDB(t)
	setup := db.Begin()
	id := mustInsert(t, setup, "t", 0)
	mustCommit(t, setup)

	a := db.Begin()
	b := db.Begin()
	if err := a.Update("t", id, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Update("t", id, 2); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, a)
	if err := b.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer got %v, want ErrConflict", err)
	}
	// final state is a's write
	check := db.Begin()
	if v, _, _ := check.Get("t", id); v != 1 {
		t.Fatalf("final value %v, want 1", v)
	}
	check.Abort()
}

func TestConcurrentInsertsDoNotConflict(t *testing.T) {
	db := newTestDB(t)
	a := db.Begin()
	b := db.Begin()
	ida := mustInsert(t, a, "t", "a")
	idb := mustInsert(t, b, "t", "b")
	if ida == idb {
		t.Fatal("duplicate row IDs")
	}
	mustCommit(t, a)
	mustCommit(t, b) // fresh inserts never conflict
}

func TestWriteSkewAllowed(t *testing.T) {
	// Classic SI anomaly: two transactions each read both rows and write the
	// other one. Under serializability one would abort; under SI both
	// commit. This pins the isolation level to genuine snapshot isolation.
	db := newTestDB(t)
	setup := db.Begin()
	x := mustInsert(t, setup, "t", 1)
	y := mustInsert(t, setup, "t", 1)
	mustCommit(t, setup)

	a := db.Begin()
	b := db.Begin()
	// both read x and y
	if _, ok, _ := a.Get("t", x); !ok {
		t.Fatal("a read x failed")
	}
	if _, ok, _ := b.Get("t", y); !ok {
		t.Fatal("b read y failed")
	}
	// a writes y, b writes x — disjoint write sets
	if err := a.Update("t", y, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Update("t", x, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatalf("a commit: %v", err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("b commit under SI: %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	setup := db.Begin()
	id := mustInsert(t, setup, "t", "x")
	mustCommit(t, setup)

	del := db.Begin()
	if err := del.Delete("t", id); err != nil {
		t.Fatal(err)
	}
	// own delete visible
	if _, ok, _ := del.Get("t", id); ok {
		t.Fatal("own delete not visible")
	}
	// other snapshot still sees the row
	other := db.Begin()
	if _, ok, _ := other.Get("t", id); !ok {
		t.Fatal("delete leaked before commit")
	}
	other.Abort()
	mustCommit(t, del)
	after := db.Begin()
	if _, ok, _ := after.Get("t", id); ok {
		t.Fatal("row visible after committed delete")
	}
	after.Abort()
}

func TestDeleteOwnInsert(t *testing.T) {
	db := newTestDB(t)
	tx := db.Begin()
	id := mustInsert(t, tx, "t", "temp")
	if err := tx.Delete("t", id); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	check := db.Begin()
	if _, ok, _ := check.Get("t", id); ok {
		t.Fatal("deleted own insert survived")
	}
	check.Abort()
}

func TestUpdateNonVisibleFails(t *testing.T) {
	db := newTestDB(t)
	tx := db.Begin()
	if err := tx.Update("t", 999, "x"); err == nil {
		t.Fatal("update of missing row accepted")
	}
	if err := tx.Delete("t", 999); err == nil {
		t.Fatal("delete of missing row accepted")
	}
	tx.Abort()
}

func TestAbortDiscards(t *testing.T) {
	db := newTestDB(t)
	tx := db.Begin()
	id := mustInsert(t, tx, "t", "x")
	tx.Abort()
	check := db.Begin()
	if _, ok, _ := check.Get("t", id); ok {
		t.Fatal("aborted insert visible")
	}
	check.Abort()
}

func TestClosedTxRejected(t *testing.T) {
	db := newTestDB(t)
	tx := db.Begin()
	mustCommit(t, tx)
	if _, err := tx.Insert("t", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Insert after commit: %v", err)
	}
	if _, _, err := tx.Get("t", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrClosed) {
		t.Errorf("double commit: %v", err)
	}
	if err := tx.Scan("t", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Scan after commit: %v", err)
	}
	tx.Abort() // no-op, must not panic
}

func TestUnknownTable(t *testing.T) {
	db := New()
	tx := db.Begin()
	if _, err := tx.Insert("nope", 1); err == nil {
		t.Error("insert into unknown table accepted")
	}
	if _, _, err := tx.Get("nope", 1); err == nil {
		t.Error("get from unknown table accepted")
	}
	if err := tx.Scan("nope", func(RowID, interface{}) bool { return true }); err == nil {
		t.Error("scan of unknown table accepted")
	}
	tx.Abort()
}

func TestScanSnapshotAndOwnWrites(t *testing.T) {
	db := newTestDB(t)
	setup := db.Begin()
	a := mustInsert(t, setup, "t", "a")
	_ = mustInsert(t, setup, "t", "b")
	mustCommit(t, setup)

	tx := db.Begin()
	if err := tx.Delete("t", a); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, tx, "t", "c")
	seen := map[interface{}]bool{}
	if err := tx.Scan("t", func(_ RowID, data interface{}) bool {
		seen[data] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen["a"] || !seen["b"] || !seen["c"] {
		t.Errorf("scan view = %v", seen)
	}
	tx.Abort()
}

func TestScanEarlyStop(t *testing.T) {
	db := newTestDB(t)
	setup := db.Begin()
	for i := 0; i < 10; i++ {
		mustInsert(t, setup, "t", i)
	}
	mustCommit(t, setup)
	tx := db.Begin()
	n := 0
	if err := tx.Scan("t", func(RowID, interface{}) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("visited %d rows after early stop", n)
	}
	tx.Abort()
}

func TestVacuumPrunesOldVersions(t *testing.T) {
	db := newTestDB(t)
	setup := db.Begin()
	id := mustInsert(t, setup, "t", 0)
	mustCommit(t, setup)
	for i := 1; i <= 50; i++ {
		tx := db.Begin()
		if err := tx.Update("t", id, i); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	db.mu.Lock()
	nv := len(db.tables["t"].rows[id])
	db.mu.Unlock()
	if nv > 2 {
		t.Errorf("vacuum left %d versions", nv)
	}
	// deleted rows disappear entirely
	tx := db.Begin()
	if err := tx.Delete("t", id); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	db.mu.Lock()
	_, exists := db.tables["t"].rows[id]
	db.mu.Unlock()
	if exists {
		t.Error("tombstoned row not vacuumed")
	}
}

func TestVacuumRespectsActiveSnapshots(t *testing.T) {
	db := newTestDB(t)
	setup := db.Begin()
	id := mustInsert(t, setup, "t", "old")
	mustCommit(t, setup)

	holder := db.Begin() // pins the old snapshot
	writer := db.Begin()
	if err := writer.Update("t", id, "new"); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, writer)

	if v, _, _ := holder.Get("t", id); v != "old" {
		t.Fatalf("pinned snapshot sees %v", v)
	}
	holder.Abort()
}

func TestStats(t *testing.T) {
	db := newTestDB(t)
	db.CreateTable("u")
	tx := db.Begin()
	mustInsert(t, tx, "t", 1)
	mustInsert(t, tx, "t", 2)
	mustCommit(t, tx)
	s := db.Stats()
	if s["t"] != 2 || s["u"] != 0 {
		t.Errorf("Stats = %v", s)
	}
}

func TestConcurrentStress(t *testing.T) {
	// Many goroutines increment disjoint counters with retries; every
	// increment must land exactly once (atomicity + isolation under real
	// concurrency, exercised with the race detector).
	db := newTestDB(t)
	const rows = 4
	const workers = 8
	const increments = 25

	ids := make([]RowID, rows)
	setup := db.Begin()
	for i := range ids {
		ids[i] = mustInsert(t, setup, "t", 0)
	}
	mustCommit(t, setup)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := ids[w%rows]
			for i := 0; i < increments; i++ {
				for {
					tx := db.Begin()
					v, ok, err := tx.Get("t", id)
					if err != nil || !ok {
						tx.Abort()
						panic(fmt.Sprintf("get: %v %v", ok, err))
					}
					if err := tx.Update("t", id, v.(int)+1); err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Commit(); err == nil {
						break
					} else if !errors.Is(err, ErrConflict) {
						panic(err)
					}
				}
			}
		}()
	}
	wg.Wait()

	check := db.Begin()
	total := 0
	for _, id := range ids {
		v, _, _ := check.Get("t", id)
		total += v.(int)
	}
	check.Abort()
	if total != workers*increments {
		t.Errorf("total increments %d, want %d", total, workers*increments)
	}
}

func BenchmarkCommitSmall(b *testing.B) {
	db := New()
	db.CreateTable("t")
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := tx.Insert("t", i); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
