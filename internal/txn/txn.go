// Package txn implements a small multi-version concurrency control (MVCC)
// row store with snapshot-isolation transactions.
//
// The paper executes all reads, updates and modifications of the
// application-aware cache "within a transaction with snapshot isolation
// level", which avoids locking the cache tables, permits a higher degree of
// parallelism and prevents dirty reads and deadlocks between queries running
// in parallel (Sec. 4). The production system gets this from SQL Server;
// this package provides the same semantics from scratch:
//
//   - a transaction reads the committed state as of its begin timestamp
//     (its snapshot), plus its own uncommitted writes;
//   - writers do not block readers and readers do not block writers;
//   - write-write conflicts are resolved first-committer-wins: the later
//     committer receives ErrConflict and must retry;
//   - classic snapshot-isolation anomalies (e.g. write skew) are permitted,
//     exactly as under SQL Server's SNAPSHOT isolation.
//
// Old versions are vacuumed once no active snapshot can see them.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"github.com/turbdb/turbdb/internal/obs"
)

// Process-wide transaction metrics. Snapshot age is measured in commit-clock
// ticks (how many commits landed between a transaction's begin and its
// commit attempt): 0 means the snapshot was current, large values flag
// long-lived transactions that block the vacuum horizon.
var (
	mBegins      = obs.Default().Counter("turbdb_txn_begin_total")
	mCommits     = obs.Default().Counter("turbdb_txn_commit_total")
	mAborts      = obs.Default().Counter("turbdb_txn_abort_total")
	mConflicts   = obs.Default().Counter("turbdb_txn_conflict_total")
	mSnapshotAge = obs.Default().Histogram("turbdb_txn_snapshot_age_ticks", obs.SizeBuckets)
)

// ErrConflict is returned by Commit when another transaction committed a
// conflicting write after this transaction's snapshot was taken.
var ErrConflict = errors.New("txn: write-write conflict, transaction must retry")

// ErrClosed is returned when using a transaction after Commit or Abort.
var ErrClosed = errors.New("txn: transaction is closed")

const infinity = ^uint64(0)

// RowID identifies a row within a table.
type RowID uint64

// version is one committed (or installing) version of a row.
type version struct {
	begin uint64      // commit timestamp that created this version
	end   uint64      // commit timestamp that superseded it (infinity if live)
	data  interface{} // nil for deletion tombstones
}

type table struct {
	rows   map[RowID][]version // versions ordered oldest → newest
	nextID RowID
}

// DB is a multi-version row store. The zero value is not usable; call New.
type DB struct {
	//turbdb:lockrank txn.db 40
	mu     sync.Mutex
	clock  uint64            // guarded by mu
	tables map[string]*table // guarded by mu
	active map[*Tx]struct{}  // guarded by mu
}

// New creates an empty database.
func New() *DB {
	return &DB{
		tables: make(map[string]*table),
		active: make(map[*Tx]struct{}),
	}
}

// CreateTable declares a table; idempotent.
func (db *DB) CreateTable(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		db.tables[name] = &table{rows: make(map[RowID][]version), nextID: 1}
	}
}

// tableLocked resolves a table by name. Caller holds db.mu.
func (db *DB) tableLocked(name string) (*table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("txn: unknown table %q", name)
	}
	return t, nil
}

// write is a buffered mutation within a transaction.
type write struct {
	data   interface{} // nil = delete
	insert bool
}

// Tx is a snapshot-isolation transaction. Not safe for concurrent use by
// multiple goroutines (as with a database session).
type Tx struct {
	db      *DB
	startTS uint64
	writes  map[string]map[RowID]write
	closed  bool
}

// Begin starts a transaction whose snapshot is the current committed state.
func (db *DB) Begin() *Tx {
	db.mu.Lock()
	defer db.mu.Unlock()
	tx := &Tx{
		db:      db,
		startTS: db.clock,
		writes:  make(map[string]map[RowID]write),
	}
	db.active[tx] = struct{}{}
	mBegins.Inc()
	return tx
}

// visible returns the row data visible at snapshot ts, with ok=false when
// the row does not exist (or is deleted) in that snapshot.
func visible(versions []version, ts uint64) (interface{}, bool) {
	// newest first: scan backwards
	for i := len(versions) - 1; i >= 0; i-- {
		v := versions[i]
		if v.begin <= ts && ts < v.end {
			if v.data == nil {
				return nil, false // tombstone
			}
			return v.data, true
		}
	}
	return nil, false
}

// Get returns the row's value in this transaction's view.
func (tx *Tx) Get(tableName string, id RowID) (interface{}, bool, error) {
	if tx.closed {
		return nil, false, ErrClosed
	}
	if w, ok := tx.writes[tableName][id]; ok {
		if w.data == nil {
			return nil, false, nil
		}
		return w.data, true, nil
	}
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	t, err := tx.db.tableLocked(tableName)
	if err != nil {
		return nil, false, err
	}
	data, ok := visible(t.rows[id], tx.startTS)
	return data, ok, nil
}

// Scan visits every row visible in this transaction's view (own writes
// included, deletions excluded) in unspecified order. Returning false from
// fn stops the scan early.
func (tx *Tx) Scan(tableName string, fn func(id RowID, data interface{}) bool) error {
	if tx.closed {
		return ErrClosed
	}
	tx.db.mu.Lock()
	t, err := tx.db.tableLocked(tableName)
	if err != nil {
		tx.db.mu.Unlock()
		return err
	}
	// snapshot the visible set under the lock, then release before calling
	// out to fn (which may be slow).
	type row struct {
		id   RowID
		data interface{}
	}
	var view []row
	written := tx.writes[tableName]
	for id, versions := range t.rows {
		if _, overridden := written[id]; overridden {
			continue
		}
		if data, ok := visible(versions, tx.startTS); ok {
			view = append(view, row{id, data})
		}
	}
	tx.db.mu.Unlock()
	for id, w := range written {
		if w.data != nil {
			view = append(view, row{id, w.data})
		}
	}
	for _, r := range view {
		if !fn(r.id, r.data) {
			return nil
		}
	}
	return nil
}

// ensureWrites returns the write buffer for a table.
func (tx *Tx) ensureWrites(tableName string) map[RowID]write {
	m, ok := tx.writes[tableName]
	if !ok {
		m = make(map[RowID]write)
		tx.writes[tableName] = m
	}
	return m
}

// Insert buffers a new row and returns its assigned ID. IDs are allocated
// eagerly so the transaction can reference the row (foreign keys) before
// commit; an aborted insert leaves an unused ID gap, as real databases do.
func (tx *Tx) Insert(tableName string, data interface{}) (RowID, error) {
	if tx.closed {
		return 0, ErrClosed
	}
	if data == nil {
		return 0, fmt.Errorf("txn: cannot insert nil")
	}
	tx.db.mu.Lock()
	t, err := tx.db.tableLocked(tableName)
	if err != nil {
		tx.db.mu.Unlock()
		return 0, err
	}
	id := t.nextID
	t.nextID++
	tx.db.mu.Unlock()
	tx.ensureWrites(tableName)[id] = write{data: data, insert: true}
	return id, nil
}

// Update buffers an overwrite of an existing row. The row must be visible
// in this transaction's view.
func (tx *Tx) Update(tableName string, id RowID, data interface{}) error {
	if tx.closed {
		return ErrClosed
	}
	if data == nil {
		return fmt.Errorf("txn: cannot update to nil, use Delete")
	}
	if _, ok, err := tx.Get(tableName, id); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("txn: update of non-visible row %d in %q", id, tableName)
	}
	w := tx.ensureWrites(tableName)
	prev, had := w[id]
	w[id] = write{data: data, insert: had && prev.insert}
	return nil
}

// Delete buffers removal of a row visible in this transaction's view.
func (tx *Tx) Delete(tableName string, id RowID) error {
	if tx.closed {
		return ErrClosed
	}
	if _, ok, err := tx.Get(tableName, id); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("txn: delete of non-visible row %d in %q", id, tableName)
	}
	w := tx.ensureWrites(tableName)
	if prev, had := w[id]; had && prev.insert {
		delete(w, id) // deleting our own uncommitted insert
		return nil
	}
	w[id] = write{data: nil}
	return nil
}

// Commit atomically installs the transaction's writes. It fails with
// ErrConflict if any written row was also written by a transaction that
// committed after this one began (first-committer-wins).
func (tx *Tx) Commit() error {
	if tx.closed {
		return ErrClosed
	}
	db := tx.db
	db.mu.Lock()
	defer db.mu.Unlock()
	tx.closed = true
	delete(db.active, tx)
	mSnapshotAge.Observe(float64(db.clock - tx.startTS))

	// validate: no row we wrote may have a version committed after startTS
	for tableName, rows := range tx.writes {
		t, err := db.tableLocked(tableName)
		if err != nil {
			return err
		}
		for id, w := range rows {
			if w.insert {
				continue // fresh ID, cannot conflict
			}
			versions := t.rows[id]
			if len(versions) > 0 && versions[len(versions)-1].begin > tx.startTS {
				mConflicts.Inc()
				return fmt.Errorf("%w (table %q row %d)", ErrConflict, tableName, id)
			}
		}
	}

	// install at a fresh commit timestamp
	db.clock++
	ts := db.clock
	for tableName, rows := range tx.writes {
		t := db.tables[tableName]
		for id, w := range rows {
			versions := t.rows[id]
			if len(versions) > 0 && versions[len(versions)-1].end == infinity {
				versions[len(versions)-1].end = ts
			}
			versions = append(versions, version{begin: ts, end: infinity, data: w.data})
			t.rows[id] = versions
		}
	}
	db.vacuumLocked()
	mCommits.Inc()
	return nil
}

// Abort discards the transaction's writes.
func (tx *Tx) Abort() {
	if tx.closed {
		return
	}
	tx.closed = true
	tx.db.mu.Lock()
	delete(tx.db.active, tx)
	tx.db.mu.Unlock()
	mAborts.Inc()
}

// vacuumLocked prunes versions invisible to every active snapshot. Caller
// holds db.mu.
func (db *DB) vacuumLocked() {
	horizon := db.clock
	for tx := range db.active {
		if tx.startTS < horizon {
			horizon = tx.startTS
		}
	}
	for _, t := range db.tables {
		for id, versions := range t.rows {
			// find the newest version with begin ≤ horizon; everything older
			// is invisible to all current and future snapshots.
			keepFrom := 0
			for i := len(versions) - 1; i >= 0; i-- {
				if versions[i].begin <= horizon {
					keepFrom = i
					break
				}
			}
			versions = versions[keepFrom:]
			// drop the row entirely if only a tombstone remains
			if len(versions) == 1 && versions[0].data == nil && versions[0].begin <= horizon {
				delete(t.rows, id)
				continue
			}
			t.rows[id] = versions
		}
	}
}

// Stats reports table sizes (live rows at the latest snapshot) for
// diagnostics.
func (db *DB) Stats() map[string]int {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make(map[string]int, len(db.tables))
	for name, t := range db.tables {
		n := 0
		for _, versions := range t.rows {
			if _, ok := visible(versions, db.clock); ok {
				n++
			}
		}
		out[name] = n
	}
	return out
}
