package txn

import (
	"errors"
	"testing"
)

// The schedule tests drive interleaved transactions step by step through a
// small interpreter, making the snapshot-isolation invariants table-driven:
// each case is a readable schedule plus the exact visibility/conflict
// outcome required at every step. They complement the scenario tests above
// by pinning the MVCC semantics — repeatable reads, first-committer-wins,
// abort releasing intents — as data, not prose.

// schedOp is one step of an interleaved schedule. Tx names transactions
// ("t1", "t2"...); Row names rows symbolically, bound at their seed/insert.
type schedOp struct {
	tx     string
	action string // begin, insert, update, delete, get, commit, abort

	row string
	val interface{} // insert/update payload

	wantAbsent bool        // get: row must be invisible
	wantVal    interface{} // get: expected value (when !wantAbsent)
	wantErr    error       // commit/update/delete: expected error (nil = success)
}

// runSchedule interprets a schedule against a fresh DB with table "t"
// seeded with the given rows.
func runSchedule(t *testing.T, seed map[string]interface{}, ops []schedOp) {
	t.Helper()
	db := New()
	db.CreateTable("t")
	ids := map[string]RowID{}
	if len(seed) > 0 {
		tx := db.Begin()
		// Deterministic seeding order doesn't matter: rows are independent.
		for name, v := range seed {
			ids[name] = mustInsert(t, tx, "t", v)
		}
		mustCommit(t, tx)
	}
	txs := map[string]*Tx{}
	for i, op := range ops {
		tx := txs[op.tx]
		switch op.action {
		case "begin":
			txs[op.tx] = db.Begin()
		case "insert":
			id, err := tx.Insert("t", op.val)
			if err != nil {
				t.Fatalf("step %d: %s insert: %v", i, op.tx, err)
			}
			ids[op.row] = id
		case "update":
			err := tx.Update("t", ids[op.row], op.val)
			if !errors.Is(err, op.wantErr) {
				t.Fatalf("step %d: %s update %s: err=%v, want %v", i, op.tx, op.row, err, op.wantErr)
			}
		case "delete":
			err := tx.Delete("t", ids[op.row])
			if !errors.Is(err, op.wantErr) {
				t.Fatalf("step %d: %s delete %s: err=%v, want %v", i, op.tx, op.row, err, op.wantErr)
			}
		case "get":
			v, ok, err := tx.Get("t", ids[op.row])
			if err != nil {
				t.Fatalf("step %d: %s get %s: %v", i, op.tx, op.row, err)
			}
			if op.wantAbsent {
				if ok {
					t.Fatalf("step %d: %s sees %s = %v, want invisible", i, op.tx, op.row, v)
				}
			} else if !ok || v != op.wantVal {
				t.Fatalf("step %d: %s get %s = (%v, %v), want %v", i, op.tx, op.row, v, ok, op.wantVal)
			}
		case "commit":
			err := tx.Commit()
			if !errors.Is(err, op.wantErr) {
				t.Fatalf("step %d: %s commit: err=%v, want %v", i, op.tx, err, op.wantErr)
			}
		case "abort":
			tx.Abort()
		default:
			t.Fatalf("step %d: unknown action %q", i, op.action)
		}
	}
}

func TestSnapshotIsolationSchedules(t *testing.T) {
	cases := []struct {
		name string
		seed map[string]interface{}
		ops  []schedOp
	}{
		{
			// A reader's snapshot is fixed at Begin: a concurrent committed
			// update stays invisible for the reader's whole lifetime, and the
			// read-only transaction commits cleanly.
			name: "repeatable read across concurrent commit",
			seed: map[string]interface{}{"r": "v0"},
			ops: []schedOp{
				{tx: "t1", action: "begin"},
				{tx: "t2", action: "begin"},
				{tx: "t2", action: "update", row: "r", val: "v1"},
				{tx: "t2", action: "commit"},
				{tx: "t1", action: "get", row: "r", wantVal: "v0"},
				{tx: "t1", action: "commit"},
				{tx: "t3", action: "begin"},
				{tx: "t3", action: "get", row: "r", wantVal: "v1"},
				{tx: "t3", action: "abort"},
			},
		},
		{
			// First committer wins: the overlapping writer that commits
			// second gets ErrConflict, and its write is discarded.
			name: "write-write conflict aborts second committer",
			seed: map[string]interface{}{"r": "v0"},
			ops: []schedOp{
				{tx: "t1", action: "begin"},
				{tx: "t2", action: "begin"},
				{tx: "t1", action: "update", row: "r", val: "from-t1"},
				{tx: "t2", action: "update", row: "r", val: "from-t2"},
				{tx: "t1", action: "commit"},
				{tx: "t2", action: "commit", wantErr: ErrConflict},
				{tx: "t3", action: "begin"},
				{tx: "t3", action: "get", row: "r", wantVal: "from-t1"},
				{tx: "t3", action: "abort"},
			},
		},
		{
			// Disjoint write sets never conflict, whatever the interleaving.
			name: "disjoint writes both commit",
			seed: map[string]interface{}{"a": 1, "b": 2},
			ops: []schedOp{
				{tx: "t1", action: "begin"},
				{tx: "t2", action: "begin"},
				{tx: "t1", action: "update", row: "a", val: 10},
				{tx: "t2", action: "update", row: "b", val: 20},
				{tx: "t2", action: "commit"},
				{tx: "t1", action: "commit"},
				{tx: "t3", action: "begin"},
				{tx: "t3", action: "get", row: "a", wantVal: 10},
				{tx: "t3", action: "get", row: "b", wantVal: 20},
				{tx: "t3", action: "abort"},
			},
		},
		{
			// Abort discards the write entirely: a later transaction over
			// the same row commits without conflict and readers never see
			// the aborted value.
			name: "abort releases the row for later writers",
			seed: map[string]interface{}{"r": "v0"},
			ops: []schedOp{
				{tx: "t1", action: "begin"},
				{tx: "t1", action: "update", row: "r", val: "doomed"},
				{tx: "t1", action: "abort"},
				{tx: "t2", action: "begin"},
				{tx: "t2", action: "get", row: "r", wantVal: "v0"},
				{tx: "t2", action: "update", row: "r", val: "v1"},
				{tx: "t2", action: "commit"},
			},
		},
		{
			// An aborted insert leaves no trace.
			name: "aborted insert invisible",
			ops: []schedOp{
				{tx: "t1", action: "begin"},
				{tx: "t1", action: "insert", row: "new", val: "ghost"},
				{tx: "t1", action: "get", row: "new", wantVal: "ghost"}, // own write
				{tx: "t1", action: "abort"},
				{tx: "t2", action: "begin"},
				{tx: "t2", action: "get", row: "new", wantAbsent: true},
				{tx: "t2", action: "abort"},
			},
		},
		{
			// Inserts committed after a snapshot was taken stay invisible to
			// it (no phantom rows under Get).
			name: "snapshot excludes later inserts",
			ops: []schedOp{
				{tx: "t1", action: "begin"},
				{tx: "t2", action: "begin"},
				{tx: "t2", action: "insert", row: "new", val: "x"},
				{tx: "t2", action: "commit"},
				{tx: "t1", action: "get", row: "new", wantAbsent: true},
				{tx: "t1", action: "abort"},
			},
		},
		{
			// Delete is a write: an overlapping update loses to a committed
			// delete, and vice versa the row stays gone.
			name: "update conflicts with committed delete",
			seed: map[string]interface{}{"r": "v0"},
			ops: []schedOp{
				{tx: "t1", action: "begin"},
				{tx: "t2", action: "begin"},
				{tx: "t1", action: "delete", row: "r"},
				{tx: "t2", action: "update", row: "r", val: "v1"},
				{tx: "t1", action: "commit"},
				{tx: "t2", action: "commit", wantErr: ErrConflict},
				{tx: "t3", action: "begin"},
				{tx: "t3", action: "get", row: "r", wantAbsent: true},
				{tx: "t3", action: "abort"},
			},
		},
		{
			// A conflicted transaction's other writes are discarded too:
			// commit is all-or-nothing.
			name: "conflict rolls back the whole write set",
			seed: map[string]interface{}{"a": "a0", "b": "b0"},
			ops: []schedOp{
				{tx: "t1", action: "begin"},
				{tx: "t2", action: "begin"},
				{tx: "t1", action: "update", row: "a", val: "a1"},
				{tx: "t2", action: "update", row: "a", val: "a2"},
				{tx: "t2", action: "update", row: "b", val: "b2"},
				{tx: "t1", action: "commit"},
				{tx: "t2", action: "commit", wantErr: ErrConflict},
				{tx: "t3", action: "begin"},
				{tx: "t3", action: "get", row: "a", wantVal: "a1"},
				{tx: "t3", action: "get", row: "b", wantVal: "b0"},
				{tx: "t3", action: "abort"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runSchedule(t, tc.seed, tc.ops)
		})
	}
}
