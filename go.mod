module github.com/turbdb/turbdb

go 1.22
