package turbdb

import (
	"net/http"

	"github.com/turbdb/turbdb/internal/wire"
)

// Handler returns an http.Handler exposing this database's mediator as the
// user-facing Web service (the JSON analogue of the paper's SOAP
// Web-services). Serve it with net/http and query it with OpenRemote or
// any HTTP client.
func (db *DB) Handler() http.Handler {
	return wire.NewMediatorServer(db.c.Mediator).Handler()
}
