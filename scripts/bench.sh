#!/bin/sh
# bench.sh runs a benchmark lane and records the results as a small JSON
# document, so each PR that claims a speedup can commit the numbers it was
# measured with (BENCH_<issue>.json at the repo root).
#
# Usage:
#
#	scripts/bench.sh                 # kernel lane, writes BENCH_3.json
#	scripts/bench.sh sched           # scheduler lane, writes BENCH_8.json
#	scripts/bench.sh wire            # wire-protocol lane, writes BENCH_10.json
#	scripts/bench.sh kernels out.json
#	BENCHTIME=1s scripts/bench.sh    # slower, steadier numbers
#
# The kernel lane's document has two sections: "kernels" is every benchmark
# that reports a ns/point metric (raw rows, per field per FD order per
# path), and "speedups" pairs the perpoint/row variants of BenchmarkNorm so
# the bulk engine's improvement factor per field per order is explicit.
#
# The scheduler lane replays the same multi-tenant concurrent threshold
# workload at 8/32/128 clients with the scheduler off (bare mediator) and
# on (admission control + shared-scan batching): "runs" is the raw tail
# latency and physical node-side scan work per lane, and "improvements"
# pairs the lanes per client count — p99 speedup and the percentage of
# node scan work the shared scans eliminated.
#
# The wire lane serializes and parses an identical 64k-point threshold
# result through both response encodings (JSON and the binary frame
# protocol): "runs" is ns/point and bytes/point per operation per
# protocol, and "improvements" pairs them — decode/encode speedup and the
# bytes-per-point compression ratio. Only sh, go and awk are required.
set -eu
cd "$(dirname "$0")/.."

lane=kernels # bare output-file argument keeps the kernel lane
case "${1:-}" in
sched)
	lane=sched
	shift
	;;
wire)
	lane=wire
	shift
	;;
kernels) shift ;;
esac

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

if [ "$lane" = wire ]; then
	out=${1:-BENCH_10.json}
	benchtime=${BENCHTIME:-200ms}
	# Both encodings serialize/parse the identical 64k-point threshold
	# result, so ns/point and bytes/point are directly comparable; the
	# improvements section pairs the protocols per operation.
	echo ">> go test -bench BenchmarkWire (benchtime $benchtime)" >&2
	go test -run=NONE -bench='BenchmarkWireEncode|BenchmarkWireDecode' \
		-benchtime "$benchtime" ./internal/wire | tee "$tmp" >&2

	awk -v generated="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		-v goversion="$(go version | sed 's/^go version //')" \
		-v benchtime="$benchtime" '
	/^BenchmarkWire/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		split(name, part, "/")               # [1]=BenchmarkWireEncode|Decode [2]=proto=json|frame
		op = part[1] == "BenchmarkWireEncode" ? "encode" : "decode"
		proto = part[2]
		sub(/^proto=/, "", proto)
		ns = bpp = "0"
		for (i = 2; i < NF; i++) {
			if ($(i + 1) == "ns/point") ns = $i
			if ($(i + 1) == "bytes/point") bpp = $i
		}
		rn[++nr] = op SUBSEP proto
		rns[nr] = ns; rbpp[nr] = bpp
		v[op, proto, "ns"] = ns
		v[op, proto, "bpp"] = bpp
	}
	END {
		printf "{\n"
		printf "  \"issue\": 10,\n"
		printf "  \"generated\": \"%s\",\n", generated
		printf "  \"go\": \"%s\",\n", goversion
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"points\": 65536,\n"
		printf "  \"runs\": [\n"
		for (i = 1; i <= nr; i++) {
			split(rn[i], part, SUBSEP)
			printf "    {\"op\": \"%s\", \"proto\": \"%s\", \"ns_per_point\": %s, \"bytes_per_point\": %s}%s\n", \
				part[1], part[2], rns[i], rbpp[i], i < nr ? "," : ""
		}
		printf "  ],\n"
		printf "  \"improvements\": [\n"
		n = split("encode decode", ops, " ")
		for (i = 1; i <= n; i++) {
			op = ops[i]
			printf "    {\"op\": \"%s\", \"json_ns_per_point\": %s, \"frame_ns_per_point\": %s, \"speedup\": %.2f, \"json_bytes_per_point\": %s, \"frame_bytes_per_point\": %s, \"bytes_ratio\": %.2f}%s\n", \
				op, v[op, "json", "ns"], v[op, "frame", "ns"], v[op, "json", "ns"] / v[op, "frame", "ns"], \
				v[op, "json", "bpp"], v[op, "frame", "bpp"], v[op, "json", "bpp"] / v[op, "frame", "bpp"], \
				i < n ? "," : ""
		}
		printf "  ]\n"
		printf "}\n"
	}' "$tmp" > "$out"

	echo ">> wrote $out" >&2
	awk '/"op"/ && /speedup/' "$out" >&2
	exit 0
fi

if [ "$lane" = sched ]; then
	out=${1:-BENCH_8.json}
	# One full replay of the workload per lane: the stream is fixed, so
	# -benchtime 1x is deterministic work and the p50/p99 are over the
	# per-query latencies inside the replay, not over b.N.
	echo ">> go test -bench BenchmarkSchedulerWorkload (benchtime 1x)" >&2
	go test -run=NONE -bench='BenchmarkSchedulerWorkload' -benchtime=1x \
		./internal/sched | tee "$tmp" >&2

	awk -v generated="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		-v goversion="$(go version | sed 's/^go version //')" '
	/^BenchmarkSchedulerWorkload/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		split(name, part, "/")               # [2]=clients=N [3]=sched=off|on
		sub(/^clients=/, "", part[2]); clients = part[2]
		sub(/^sched=/, "", part[3]); mode = part[3]
		p50 = p99 = pts = saved = "0"
		for (i = 2; i < NF; i++) {
			if ($(i + 1) == "p50_ms") p50 = $i
			if ($(i + 1) == "p99_ms") p99 = $i
			if ($(i + 1) == "points_examined") pts = $i
			if ($(i + 1) == "scans_saved") saved = $i
		}
		rn[++nr] = clients SUBSEP mode
		rp50[nr] = p50; rp99[nr] = p99; rpts[nr] = pts; rsaved[nr] = saved
		v[clients, mode, "p99"] = p99
		v[clients, mode, "pts"] = pts
		v[clients, mode, "saved"] = saved
		if (!(clients in seen)) { seen[clients] = 1; cl[++ncl] = clients }
	}
	END {
		printf "{\n"
		printf "  \"issue\": 8,\n"
		printf "  \"generated\": \"%s\",\n", generated
		printf "  \"go\": \"%s\",\n", goversion
		printf "  \"bench\": \"BenchmarkSchedulerWorkload\",\n"
		printf "  \"runs\": [\n"
		for (i = 1; i <= nr; i++) {
			split(rn[i], part, SUBSEP)
			printf "    {\"clients\": %s, \"sched\": \"%s\", \"p50_ms\": %s, \"p99_ms\": %s, \"points_examined\": %s, \"scans_saved\": %s}%s\n", \
				part[1], part[2], rp50[i], rp99[i], rpts[i], rsaved[i], i < nr ? "," : ""
		}
		printf "  ],\n"
		printf "  \"improvements\": [\n"
		for (i = 1; i <= ncl; i++) {
			c = cl[i]
			off = v[c, "off", "pts"]; on = v[c, "on", "pts"]
			red = off > 0 ? 100 * (off - on) / off : 0
			printf "    {\"clients\": %s, \"p99_off_ms\": %s, \"p99_on_ms\": %s, \"p99_speedup\": %.2f, \"scan_reduction_pct\": %.1f, \"scans_saved\": %s}%s\n", \
				c, v[c, "off", "p99"], v[c, "on", "p99"], v[c, "off", "p99"] / v[c, "on", "p99"], red, v[c, "on", "saved"], i < ncl ? "," : ""
		}
		printf "  ]\n"
		printf "}\n"
	}' "$tmp" > "$out"

	echo ">> wrote $out" >&2
	awk '/"clients"/ && /scan_reduction_pct/' "$out" >&2
	exit 0
fi

out=${1:-BENCH_3.json}
benchtime=${BENCHTIME:-100ms}

echo ">> go test -bench (benchtime $benchtime)" >&2
go test -run=NONE \
	-bench='BenchmarkNorm|BenchmarkDerivRow|BenchmarkGradientRow|BenchmarkThresholdScan' \
	-benchtime "$benchtime" \
	./internal/stencil ./internal/derived ./internal/node | tee "$tmp" >&2

awk -v generated="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v goversion="$(go version | sed 's/^go version //')" \
	-v benchtime="$benchtime" '
/^Benchmark/ && /ns\/point/ {
	name = $1
	sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
	sub(/^Benchmark/, "", name)
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/point") ns = $i
	}
	kn[++nk] = name
	kv[nk] = ns
	# Norm/<field>/o<order>/<path> rows feed the speedup table.
	if (split(name, part, "/") == 4 && part[1] == "Norm") {
		key = part[2] SUBSEP substr(part[3], 2)
		if (part[4] == "perpoint") pp[key] = ns
		if (part[4] == "row") {
			row[key] = ns
			sk[++ns_pairs] = key
		}
	}
}
END {
	printf "{\n"
	printf "  \"issue\": 3,\n"
	printf "  \"generated\": \"%s\",\n", generated
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"kernels\": [\n"
	for (i = 1; i <= nk; i++)
		printf "    {\"bench\": \"%s\", \"ns_per_point\": %s}%s\n", kn[i], kv[i], i < nk ? "," : ""
	printf "  ],\n"
	printf "  \"speedups\": [\n"
	for (i = 1; i <= ns_pairs; i++) {
		split(sk[i], part, SUBSEP)
		p = pp[sk[i]]; r = row[sk[i]]
		printf "    {\"field\": \"%s\", \"order\": %s, \"perpoint_ns\": %s, \"row_ns\": %s, \"speedup\": %.2f}%s\n", \
			part[1], part[2], p, r, p / r, i < ns_pairs ? "," : ""
	}
	printf "  ]\n"
	printf "}\n"
}' "$tmp" > "$out"

echo ">> wrote $out" >&2
awk '/"field"/' "$out" >&2
