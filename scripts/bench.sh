#!/bin/sh
# bench.sh runs the kernel microbenchmarks and records the results as a
# small JSON document, so each PR that claims a speedup can commit the
# numbers it was measured with (BENCH_<issue>.json at the repo root).
#
# Usage:
#
#	scripts/bench.sh                 # writes BENCH_3.json
#	scripts/bench.sh out.json        # writes out.json
#	BENCHTIME=1s scripts/bench.sh    # slower, steadier numbers
#
# The document has two sections: "kernels" is every benchmark that reports
# a ns/point metric (raw rows, per field per FD order per path), and
# "speedups" pairs the perpoint/row variants of BenchmarkNorm so the bulk
# engine's improvement factor per field per order is explicit. Only sh,
# go and awk are required.
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_3.json}
benchtime=${BENCHTIME:-100ms}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo ">> go test -bench (benchtime $benchtime)" >&2
go test -run=NONE \
	-bench='BenchmarkNorm|BenchmarkDerivRow|BenchmarkGradientRow|BenchmarkThresholdScan' \
	-benchtime "$benchtime" \
	./internal/stencil ./internal/derived ./internal/node | tee "$tmp" >&2

awk -v generated="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v goversion="$(go version | sed 's/^go version //')" \
	-v benchtime="$benchtime" '
/^Benchmark/ && /ns\/point/ {
	name = $1
	sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
	sub(/^Benchmark/, "", name)
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/point") ns = $i
	}
	kn[++nk] = name
	kv[nk] = ns
	# Norm/<field>/o<order>/<path> rows feed the speedup table.
	if (split(name, part, "/") == 4 && part[1] == "Norm") {
		key = part[2] SUBSEP substr(part[3], 2)
		if (part[4] == "perpoint") pp[key] = ns
		if (part[4] == "row") {
			row[key] = ns
			sk[++ns_pairs] = key
		}
	}
}
END {
	printf "{\n"
	printf "  \"issue\": 3,\n"
	printf "  \"generated\": \"%s\",\n", generated
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"kernels\": [\n"
	for (i = 1; i <= nk; i++)
		printf "    {\"bench\": \"%s\", \"ns_per_point\": %s}%s\n", kn[i], kv[i], i < nk ? "," : ""
	printf "  ],\n"
	printf "  \"speedups\": [\n"
	for (i = 1; i <= ns_pairs; i++) {
		split(sk[i], part, SUBSEP)
		p = pp[sk[i]]; r = row[sk[i]]
		printf "    {\"field\": \"%s\", \"order\": %s, \"perpoint_ns\": %s, \"row_ns\": %s, \"speedup\": %.2f}%s\n", \
			part[1], part[2], p, r, p / r, i < ns_pairs ? "," : ""
	}
	printf "  ]\n"
	printf "}\n"
}' "$tmp" > "$out"

echo ">> wrote $out" >&2
awk '/"field"/' "$out" >&2
