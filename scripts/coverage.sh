#!/bin/sh
# coverage.sh runs the coverage lane: statement coverage for the packages
# the observability PR hardened (cache, txn, query, obs), enforcing a
# per-package floor so coverage can only ratchet up. The full profile is
# written to the git-ignored .cover/ directory (uploaded as a CI artifact;
# feed it to `go tool cover -html=.cover/coverage.out` locally).
set -eu
cd "$(dirname "$0")/.."
mkdir -p .cover

PKGS='./internal/cache ./internal/txn ./internal/query ./internal/obs'

echo '>> go test -coverprofile (cache, txn, query, obs)'
# shellcheck disable=SC2086
go test -coverprofile=.cover/coverage.out -covermode=atomic $PKGS | tee .cover/coverage.txt

# Per-package floors, in percent. Deliberately below current measurements
# (regression tripwires, not targets): a PR that drops a package under its
# floor must either add tests or consciously lower the floor in review.
floor_for() {
	case "$1" in
	*/internal/cache) echo 80 ;;
	*/internal/txn) echo 85 ;;
	*/internal/query) echo 90 ;;
	*/internal/obs) echo 85 ;;
	*) echo 0 ;;
	esac
}

status=0
for pkg in $PKGS; do
	path="github.com/turbdb/turbdb/${pkg#./}"
	pct=$(awk -v p="$path" '$2 == p { for (i = 1; i <= NF; i++) if ($i == "coverage:") { sub(/%$/, "", $(i+1)); print $(i+1); exit } }' .cover/coverage.txt)
	if [ -z "$pct" ]; then
		echo "FAIL: no coverage reported for $pkg"
		status=1
		continue
	fi
	floor=$(floor_for "$pkg")
	printf '%-24s %6s%% (floor %s%%)\n' "$pkg" "$pct" "$floor"
	if [ "$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p < f) ? 1 : 0 }')" = "1" ]; then
		echo "FAIL: $pkg coverage $pct% is below the $floor% floor"
		status=1
	fi
done

exit $status
