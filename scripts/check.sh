#!/bin/sh
# check.sh runs the same gate as CI (.github/workflows/ci.yml), in the same
# order: cheap static checks first, the race-detector lane last. Each lane
# reports its wall-clock time so slow lanes are visible at a glance.
set -eu
cd "$(dirname "$0")/.."

# Every lane shells out to the go tool, and half of them die with a cryptic
# "module lookup disabled" / "dial tcp" error when the module cache is cold
# and the network is unavailable. Fail fast with a clear message instead.
if ! go list -deps ./... >/dev/null 2>&1; then
	echo 'check.sh: `go list -deps ./...` failed — the build graph cannot be loaded.' >&2
	echo 'check.sh: if the error below mentions downloads or dial/lookup failures,' >&2
	echo 'check.sh: the module cache is cold and there is no network; run `go mod download`' >&2
	echo 'check.sh: somewhere with network access first.' >&2
	go list -deps ./... >/dev/null
	exit 1
fi

LANE_START=0
lane() {
	LANE_START=$(date +%s)
	echo ">> $*"
}
lane_done() {
	echo "   done in $(($(date +%s) - LANE_START))s"
}

lane 'go build ./...'
go build ./...
lane_done

lane 'go vet ./...'
go vet ./...
lane_done

# The analyzer suite carries its own wall-clock budget (override with
# VET_BUDGET=...): a new analyzer that makes the gate crawl fails here
# loudly, with the per-analyzer timing table naming the offender.
lane 'turbdb-vet ./...'
go run ./cmd/turbdb-vet -timings -budget "${VET_BUDGET:-120s}" ./...
lane_done

lane 'go test ./...'
go test ./...
lane_done

lane 'go test -race -short ./...'
go test -race -short ./...
lane_done

# Coverage lane: statement-coverage floors for the packages the test-first
# hardening pass owns (cache, txn, query, obs); see scripts/coverage.sh.
lane 'coverage floors (cache, txn, query, obs)'
sh scripts/coverage.sh
lane_done

# The chaos suites (fault injection, node death mid-query) are the tests most
# likely to surface races in the retry/breaker/partial-merge paths; run the
# fault-tolerance packages in full under the race detector so -short filters
# above can never skip them.
lane 'go test -race fault-tolerance packages'
go test -race ./internal/faulttol/... ./internal/faultinject/... ./internal/cluster/... ./internal/wire/...
lane_done

# Replica-failover chaos lane: membership, placement, and the elastic
# suites (replica failover, join/leave rebalances, the 64-node DES
# scenario) by name under the race detector. The packages also run above;
# naming the suites keeps a future -short or -run filter from silently
# dropping them, and gives failover its own lane timing. Every rebalance
# and failover test ends in obs.VerifyNoLeaks, so a leaked goroutine in the
# fan-out or streaming paths fails this lane.
lane 'replica failover chaos (-race)'
go test -race -run 'Failover|Elastic|Replicated|FaultPlan|Scan|Held|Table|Placement|Topology|RangeFailures|ReplicasDown' \
	./internal/membership/... ./internal/mediator/... ./internal/cluster/... ./internal/wire/...
lane_done

# Scheduler stress lane: the concurrent-scheduler suites by name under the
# race detector — admission edge cases (quota exhaustion, cancel-while-
# queued, bounded priority inversion, batch-seal races), the differential
# suites proving shared-scan batching is bit-for-bit identical to
# sequential evaluation, the mid-run node-death stress run, and the
# multi-tenant workload runner. Every suite ends in obs.VerifyNoLeaks, so a
# goroutine leaked by the scheduler's executors or batch fan-out fails here.
lane 'scheduler stress (-race)'
go test -race -run 'Sched|Concurrent' ./internal/sched/... ./internal/workload/...
lane_done

# Benchmark smoke lane: one iteration of every kernel microbenchmark plus
# the scheduler workload lane, so a change that breaks a benchmark (or its
# setup) fails the gate instead of surfacing the next time someone runs
# scripts/bench.sh.
lane 'benchmark smoke (kernel + scheduler packages, 1 iteration)'
go test -run=NONE -bench=. -benchtime=1x ./internal/stencil ./internal/field ./internal/derived ./internal/node ./internal/sched
lane_done

# Binary wire-protocol lane: the golden-frame fixtures (committed bytes must
# decode to the pinned structs and re-encode byte-identically) and the
# differential cross-encoding matrix (every JSON/frame client–server pairing
# must answer Float32bits-identically to the JSON baseline, including the
# dead-node partial-coverage and replica-failover cases) by name, under the
# race detector. The suites also run in the package lanes above; naming them
# keeps a future filter from silently dropping the protocol's conformance
# evidence.
lane 'binary wire protocol: golden frames + differential matrix (-race)'
go test -race -run 'TestGoldenFrames|TestDifferential|TestFrame' ./internal/wire/...
lane_done

# Fuzz smoke lane: a short coverage-guided run of each fuzz target beyond its
# seed corpus (the seeds already ran as plain tests above). `go test -fuzz`
# accepts exactly one matching target per invocation, hence one anchored
# pattern each. Skippable for quick local iterations: SKIP_FUZZ=1 scripts/check.sh
if [ "${SKIP_FUZZ:-0}" = "1" ]; then
	echo '>> fuzz smoke: skipped (SKIP_FUZZ=1)'
else
	lane 'fuzz smoke (10s per target)'
	go test -run=NONE -fuzz='^FuzzEncodeDecode$' -fuzztime=10s ./internal/morton
	go test -run=NONE -fuzz='^FuzzCodeRoundTrip$' -fuzztime=10s ./internal/morton
	go test -run=NONE -fuzz='^FuzzRequestDecode$' -fuzztime=10s ./internal/wire
	go test -run=NONE -fuzz='^FuzzResponseDecode$' -fuzztime=10s ./internal/wire
	go test -run=NONE -fuzz='^FuzzFrameDecode$' -fuzztime=10s ./internal/wire/binproto
	go test -run=NONE -fuzz='^FuzzPointsRoundTrip$' -fuzztime=10s ./internal/wire/binproto
	lane_done
fi

echo 'All checks passed.'
