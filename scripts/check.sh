#!/bin/sh
# check.sh runs the same gate as CI (.github/workflows/ci.yml), in the same
# order: cheap static checks first, the race-detector lane last.
set -eu
cd "$(dirname "$0")/.."

echo '>> go build ./...'
go build ./...

echo '>> go vet ./...'
go vet ./...

echo '>> turbdb-vet ./...'
go run ./cmd/turbdb-vet ./...

echo '>> go test ./...'
go test ./...

echo '>> go test -race -short ./...'
go test -race -short ./...

# The chaos suites (fault injection, node death mid-query) are the tests most
# likely to surface races in the retry/breaker/partial-merge paths; run the
# fault-tolerance packages in full under the race detector so -short filters
# above can never skip them.
echo '>> go test -race fault-tolerance packages'
go test -race ./internal/faulttol/... ./internal/faultinject/... ./internal/cluster/... ./internal/wire/...

# Benchmark smoke lane: one iteration of every kernel microbenchmark, so a
# change that breaks a benchmark (or its setup) fails the gate instead of
# surfacing the next time someone runs scripts/bench.sh.
echo '>> benchmark smoke (kernel packages, 1 iteration)'
go test -run=NONE -bench=. -benchtime=1x ./internal/stencil ./internal/field ./internal/derived ./internal/node

echo 'All checks passed.'
