#!/bin/sh
# check.sh runs the same gate as CI (.github/workflows/ci.yml), in the same
# order: cheap static checks first, the race-detector lane last.
set -eu
cd "$(dirname "$0")/.."

echo '>> go build ./...'
go build ./...

echo '>> go vet ./...'
go vet ./...

echo '>> turbdb-vet ./...'
go run ./cmd/turbdb-vet ./...

echo '>> go test ./...'
go test ./...

echo '>> go test -race -short ./...'
go test -race -short ./...

# Coverage lane: statement-coverage floors for the packages the test-first
# hardening pass owns (cache, txn, query, obs); see scripts/coverage.sh.
echo '>> coverage floors (cache, txn, query, obs)'
sh scripts/coverage.sh

# The chaos suites (fault injection, node death mid-query) are the tests most
# likely to surface races in the retry/breaker/partial-merge paths; run the
# fault-tolerance packages in full under the race detector so -short filters
# above can never skip them.
echo '>> go test -race fault-tolerance packages'
go test -race ./internal/faulttol/... ./internal/faultinject/... ./internal/cluster/... ./internal/wire/...

# Benchmark smoke lane: one iteration of every kernel microbenchmark, so a
# change that breaks a benchmark (or its setup) fails the gate instead of
# surfacing the next time someone runs scripts/bench.sh.
echo '>> benchmark smoke (kernel packages, 1 iteration)'
go test -run=NONE -bench=. -benchtime=1x ./internal/stencil ./internal/field ./internal/derived ./internal/node

# Fuzz smoke lane: a short coverage-guided run of each fuzz target beyond its
# seed corpus (the seeds already ran as plain tests above). `go test -fuzz`
# accepts exactly one matching target per invocation, hence one anchored
# pattern each. Skippable for quick local iterations: SKIP_FUZZ=1 scripts/check.sh
if [ "${SKIP_FUZZ:-0}" = "1" ]; then
	echo '>> fuzz smoke: skipped (SKIP_FUZZ=1)'
else
	echo '>> fuzz smoke (10s per target)'
	go test -run=NONE -fuzz='^FuzzEncodeDecode$' -fuzztime=10s ./internal/morton
	go test -run=NONE -fuzz='^FuzzCodeRoundTrip$' -fuzztime=10s ./internal/morton
	go test -run=NONE -fuzz='^FuzzRequestDecode$' -fuzztime=10s ./internal/wire
	go test -run=NONE -fuzz='^FuzzResponseDecode$' -fuzztime=10s ./internal/wire
fi

echo 'All checks passed.'
