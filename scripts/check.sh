#!/bin/sh
# check.sh runs the same gate as CI (.github/workflows/ci.yml), in the same
# order: cheap static checks first, the race-detector lane last.
set -eu
cd "$(dirname "$0")/.."

echo '>> go build ./...'
go build ./...

echo '>> go vet ./...'
go vet ./...

echo '>> turbdb-vet ./...'
go run ./cmd/turbdb-vet ./...

echo '>> go test ./...'
go test ./...

echo '>> go test -race -short ./...'
go test -race -short ./...

echo 'All checks passed.'
