// Package turbdb is a numerical-simulation analysis database with efficient
// evaluation of threshold queries of derived fields — a from-scratch Go
// implementation of the system described in "Efficient evaluation of
// threshold queries of derived fields in a numerical simulation database"
// (Kanov, Burns, Lalescu; EDBT 2015), the threshold-query engine of the
// Johns Hopkins Turbulence Databases.
//
// A turbdb database stores the raw fields of a turbulence simulation
// (velocity, pressure, and for MHD datasets the magnetic field) as small
// Morton-ordered cubic atoms sharded across the nodes of an analysis
// cluster. Threshold queries of fields *derived* from the raw data —
// vorticity, electric current, Q-criterion, velocity-gradient invariants —
// are evaluated data-parallel on the nodes where the data live: each node
// reads its shard plus a halo band, computes the derived field at every
// grid point with centered finite differences, and returns the locations
// whose norm exceeds the threshold. Results are stored in a per-node
// application-aware semantic cache (snapshot-isolation tables, LRU,
// SSD-resident); subsequent queries over the same region at the same or a
// higher threshold are answered from the cache an order of magnitude
// faster.
//
// # Quick start
//
//	db, err := turbdb.Open(turbdb.Config{
//		Kind:  turbdb.MHD,
//		GridN: 64,
//		Steps: 4,
//		Nodes: 4,
//		Cache: true,
//	})
//	if err != nil { ... }
//	rms, _ := db.NormRMS("vorticity", 0)
//	points, stats, err := db.Threshold(turbdb.ThresholdQuery{
//		Field:     "vorticity",
//		Timestep:  0,
//		Threshold: 7 * rms,
//	})
//
// Open synthesizes a deterministic spectral turbulence dataset (the stand-in
// for the JHU production data, which is hundreds of terabytes) and ingests
// it into an in-process cluster. Set Config.Simulate to run the cluster on
// a discrete-event simulation with modeled disks, cores and links — the
// mode used to regenerate the paper's scaling and breakdown experiments.
// Query a remote deployment instead with OpenRemote.
package turbdb
