// Command turbdb-bench regenerates the paper's tables and figures: it
// builds the synthetic dataset, assembles simulated clusters, runs every
// experiment of internal/experiments and prints the same rows and series
// the paper reports (Sec. 5), plus the ablations described in DESIGN.md.
//
// Usage:
//
//	turbdb-bench                 # everything, 64³ dataset
//	turbdb-bench -fig 6          # just Table 1 / Fig. 6
//	turbdb-bench -grid 128       # larger dataset (slower synthesis)
//
// Timings are virtual cluster time from the discrete-event simulation; see
// EXPERIMENTS.md for how they relate to the paper's published numbers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/turbdb/turbdb/internal/experiments"
	"github.com/turbdb/turbdb/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbdb-bench: ")

	var (
		gridN      = flag.Int("grid", 64, "grid side (power of two)")
		steps      = flag.Int("steps", 4, "time-steps")
		seed       = flag.Int64("seed", 2015, "dataset seed")
		fig        = flag.String("fig", "all", `which experiment: all, 2, 3, 4, 6, 7a, 7b, 8, 9, local, ablations`)
		step       = flag.Int("step", 0, "time-step the per-step experiments use")
		trace      = flag.Bool("trace", false, "trace one threshold query (cold + warm cache) and print the span trees instead of running experiments")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		proto      = flag.String("proto", "json", `modeled response encoding for the network model's wire-byte accounting: "json" or "frame"`)
	)
	flag.Parse()

	switch *proto {
	case "", "json":
		// SerializedPointSize default.
	case "frame":
		query.SetPointWireSize(query.FramePointSize)
	default:
		log.Fatalf("unknown -proto %q (want json or frame)", *proto)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("cpuprofile: %v", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			runtime.GC() // up-to-date live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	start := time.Now()
	env, err := experiments.NewEnv(experiments.Setup{
		GridN: *gridN, Steps: *steps, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: mhd %d³ × %d steps (seed %d); cluster: %d nodes × %d processes; calibrated per-point costs\n\n",
		*gridN, *steps, *seed, env.Setup.Nodes, env.Setup.Processes)

	if *trace {
		res, err := env.TraceDemo(*step)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Println(res.String())
		return
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	type runner struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	runners := []runner{
		{"2", func() (fmt.Stringer, error) { return env.Fig2PDF(*step) }},
		{"3", func() (fmt.Stringer, error) { return env.Fig3Worms() }},
		{"4", func() (fmt.Stringer, error) { return env.Fig4Count(*step) }},
		{"6", func() (fmt.Stringer, error) { return env.Table1CacheEffectiveness(*step) }},
		{"7a", func() (fmt.Stringer, error) { return env.Fig7aScaleUp(*step) }},
		{"7b", func() (fmt.Stringer, error) { return env.Fig7bScaleOut(*step) }},
		{"8", func() (fmt.Stringer, error) { return env.Fig8IOBreakdown(*step) }},
		{"9", func() (fmt.Stringer, error) { return env.Fig9Breakdown(*step) }},
		{"local", func() (fmt.Stringer, error) { return env.LocalVsIntegrated(*step) }},
	}
	ran := 0
	for _, r := range runners {
		if !want(r.name) {
			continue
		}
		res, err := r.run()
		if err != nil {
			log.Fatalf("fig %s: %v", r.name, err)
		}
		fmt.Println(res.String())
		ran++
	}

	if want("ablations") {
		ablations := []runner{
			{"fd-order", func() (fmt.Stringer, error) { return env.FDOrderSweep(*step) }},
			{"atom-size", func() (fmt.Stringer, error) { return env.AtomSizeSweep(*step) }},
			{"workload", func() (fmt.Stringer, error) { return env.WorkloadSweep(60) }},
			{"capacity", func() (fmt.Stringer, error) { return env.CapacitySweep(60) }},
		}
		for _, r := range ablations {
			res, err := r.run()
			if err != nil {
				log.Fatalf("ablation %s: %v", r.name, err)
			}
			fmt.Println(res.String())
			ran++
		}
	}

	if ran == 0 {
		log.Fatalf("unknown -fig %q (want all, 2, 3, 4, 6, 7a, 7b, 8, 9, local, ablations)", *fig)
	}
	fmt.Printf("%s\ncompleted %d experiment(s) in %v\n", strings.Repeat("-", 60), ran, time.Since(start).Round(time.Millisecond))
}
