// Command turbdb-gen synthesizes a turbulence dataset and writes the
// sharded atom tables of an N-node deployment to disk, ready to be served
// by turbdb-server.
//
// Usage:
//
//	turbdb-gen -out ./deploy -kind mhd -grid 64 -steps 4 -nodes 4 -seed 2015
//
// The output directory holds a manifest.json plus one node<i>/ directory
// per node, each containing the node's Morton-range shard of every raw
// field at every time-step.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/turbdb/turbdb/internal/grid"
	"github.com/turbdb/turbdb/internal/store"
	"github.com/turbdb/turbdb/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbdb-gen: ")

	var (
		out      = flag.String("out", "", "output deployment directory (required)")
		kindName = flag.String("kind", "mhd", `dataset kind: "isotropic" or "mhd"`)
		gridN    = flag.Int("grid", 64, "grid side (power of two)")
		atomSide = flag.Int("atom", grid.DefaultAtomSide, "database atom side")
		steps    = flag.Int("steps", 4, "number of time-steps")
		nodes    = flag.Int("nodes", 4, "number of database nodes (shards)")
		seed     = flag.Int64("seed", 2015, "random seed")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var kind synth.Kind
	switch *kindName {
	case "isotropic":
		kind = synth.Isotropic
	case "mhd":
		kind = synth.MHD
	default:
		log.Fatalf("unknown kind %q", *kindName)
	}

	gen, err := synth.New(synth.Params{
		N: *gridN, AtomSide: *atomSide, Seed: *seed, Kind: kind, Steps: *steps,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := gen.Grid()
	ranges := g.AtomRange().Split(*nodes, 1)

	manifest := store.Manifest{
		Dataset: gen.Name(), GridN: g.N, AtomSide: g.AtomSide, Dx: g.Dx,
		Steps: *steps, Seed: *seed,
	}
	for _, rf := range gen.RawFields() {
		manifest.Fields = append(manifest.Fields, store.FieldMeta{Name: rf.Name, NComp: rf.NComp})
	}
	for _, r := range ranges {
		manifest.Shards = append(manifest.Shards, [2]uint64{uint64(r.Lo), uint64(r.Hi)})
	}
	if err := store.WriteManifest(*out, manifest); err != nil {
		log.Fatal(err)
	}

	stores := make([]*store.Store, *nodes)
	for i := range stores {
		s, err := store.New(store.Config{Grid: g, Owned: ranges[i]})
		if err != nil {
			log.Fatal(err)
		}
		for _, fm := range manifest.Fields {
			if err := s.CreateField(fm); err != nil {
				log.Fatal(err)
			}
		}
		stores[i] = s
	}

	for _, rf := range gen.RawFields() {
		for step := 0; step < *steps; step++ {
			fmt.Printf("synthesizing %-9s step %d/%d\n", rf.Name, step+1, *steps)
			bl, err := gen.Field(rf.Name, step)
			if err != nil {
				log.Fatal(err)
			}
			for i, s := range stores {
				if _, err := s.IngestBlock(rf.Name, step, bl); err != nil {
					log.Fatalf("node %d: %v", i, err)
				}
			}
		}
	}

	var totalAtoms int
	for i, s := range stores {
		dir := store.NodeDir(*out, i)
		if err := s.Save(dir); err != nil {
			log.Fatal(err)
		}
		for _, fm := range manifest.Fields {
			totalAtoms += s.CountAtoms(fm.Name, 0) * *steps
		}
	}
	fmt.Printf("wrote %s: %s dataset, %d³ grid, %d steps, %d nodes, %d atom records\n",
		*out, manifest.Dataset, g.N, *steps, *nodes, totalAtoms)
}
