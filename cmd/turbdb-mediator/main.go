// Command turbdb-mediator runs the front-end Web-server of the analysis
// cluster: it fans user queries out to the database nodes, assembles the
// distributed results, and serves the user-facing API (the role of the
// mediator in the paper's Fig. 1).
//
// Usage:
//
//	turbdb-mediator -addr :7080 \
//	    -nodes http://127.0.0.1:7070,http://127.0.0.1:7071
//
// -allow-partial answers from the surviving nodes when one stays
// unreachable after retries, annotating responses with the coverage of
// the Morton space actually scanned; the default is strict all-or-
// nothing. SIGINT/SIGTERM drain in-flight queries for -drain, then cancel
// them.
//
// -replicas k enables replica failover: the mediator discovers which node
// holds which ranges from each service's /info (nodes started with
// -replica-shards advertise their replica holdings), requires every range
// to be held by at least k nodes, and re-routes a dead primary's ranges to
// live replicas — partial answers become a last resort reserved for ranges
// with every holder down.
//
// The concurrent query scheduler (on by default, -sched=false for the bare
// mediator) adds admission control and shared-scan batching in front of the
// fan-out: -sched-concurrent caps in-flight queries, -sched-window sets the
// batching window merging concurrent threshold queries over the same
// (field, order, step) into one node pass, and -sched-pools carves
// per-tenant resource pools, e.g.
//
//	-sched-pools 'viz=8:32:10,batch=4:16:0'
//
// giving tenant "viz" 8 running slots, a 32-query queue and priority 10.
// Queries name their tenant in the request's "tenant" field; over-quota
// arrivals are shed with HTTP 429.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/turbdb/turbdb/internal/mediator"
	"github.com/turbdb/turbdb/internal/membership"
	"github.com/turbdb/turbdb/internal/morton"
	"github.com/turbdb/turbdb/internal/node"
	"github.com/turbdb/turbdb/internal/sched"
	"github.com/turbdb/turbdb/internal/wire"
)

// parsePools parses -sched-pools: comma-separated name=running:queued:prio
// entries (any numeric part may be left empty for the default).
func parsePools(spec string) (map[string]sched.Pool, error) {
	if spec == "" {
		return nil, nil
	}
	pools := make(map[string]sched.Pool)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("pool %q: want name=running:queued:priority", entry)
		}
		parts := strings.Split(rest, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("pool %q: want name=running:queued:priority", entry)
		}
		var p sched.Pool
		for i, dst := range []*int{&p.MaxRunning, &p.MaxQueued, &p.Priority} {
			if parts[i] == "" {
				continue
			}
			if _, err := fmt.Sscanf(parts[i], "%d", dst); err != nil {
				return nil, fmt.Errorf("pool %q: bad number %q", entry, parts[i])
			}
		}
		pools[name] = p
	}
	return pools, nil
}

// discoverTopology builds the replica routing table from the nodes'
// advertised holdings: range i is node i's primary range, owned by node i
// plus every node holding a replica covering it.
func discoverTopology(ctx context.Context, clients []mediator.NodeClient, k int) (*mediator.Topology, error) {
	descs := make([]node.Description, len(clients))
	for i, c := range clients {
		d, err := c.Describe(ctx)
		if err != nil {
			return nil, fmt.Errorf("describing node %d: %w", i, err)
		}
		descs[i] = d
	}
	t := &mediator.Topology{
		Version: 1,
		Ranges:  make([]morton.Range, len(clients)),
		Owners:  make([][]int, len(clients)),
	}
	for i, d := range descs {
		t.Ranges[i] = d.Owned
		owners := []int{i}
		for j, dj := range descs {
			if j == i {
				continue
			}
			for _, h := range dj.Held {
				if h.Lo <= d.Owned.Lo && d.Owned.Hi <= h.Hi {
					owners = append(owners, j)
					break
				}
			}
		}
		if len(owners) < k {
			return nil, fmt.Errorf("range %v has %d holders, need %d — start the nodes with -replica-shards", d.Owned, len(owners), k)
		}
		t.Owners[i] = owners
	}
	return t, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbdb-mediator: ")

	var (
		addr    = flag.String("addr", ":7080", "listen address")
		nodes   = flag.String("nodes", "", "comma-separated URLs of the node services (required)")
		partial = flag.Bool("allow-partial", false, "answer from surviving nodes when a node is unreachable (responses carry coverage)")
		repl    = flag.Int("replicas", 1, "required copies of every range; ≥ 2 enables replica failover from the nodes' advertised holdings")
		connTO  = flag.Duration("connect-timeout", 30*time.Second, "deadline for contacting every node at startup")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		dbgAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (off by default)")

		jsonOnly  = flag.Bool("json-only", false, "answer every response as JSON, ignoring binary-frame negotiation (debug/compat)")
		nodeProto = flag.String("node-proto", "json", `response encoding negotiated with the node services: "json" or "frame"`)

		schedOn    = flag.Bool("sched", true, "run the concurrent query scheduler (admission control + shared-scan batching)")
		schedConc  = flag.Int("sched-concurrent", 0, "global concurrent-query cap (0 = 4×GOMAXPROCS)")
		schedWin   = flag.Duration("sched-window", 2*time.Millisecond, "shared-scan batching window (0 disables batching)")
		schedQueue = flag.Int("sched-queue", 0, "default per-tenant queue quota before shedding (0 = built-in default)")
		schedPools = flag.String("sched-pools", "", "per-tenant pools, name=running:queued:priority[,...]")
	)
	flag.Parse()
	if *nodes == "" {
		flag.Usage()
		os.Exit(2)
	}

	nproto, err := wire.ParseProto(*nodeProto)
	if err != nil {
		log.Fatal(err)
	}
	var clients []mediator.NodeClient
	for _, url := range strings.Split(*nodes, ",") {
		clients = append(clients, wire.NewClient(strings.TrimSpace(url), wire.WithProto(nproto)))
	}

	ctx, cancel := context.WithTimeout(context.Background(), *connTO)
	cfg := mediator.Config{
		Nodes: clients, AllowPartial: *partial, DescribeCtx: ctx,
	}
	if *repl >= 2 {
		topo, err := discoverTopology(ctx, clients, *repl)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Topology = topo
		ids := make([]int, len(clients))
		for i := range ids {
			ids[i] = i
		}
		cfg.Members = membership.NewTable(ids...)
	}
	m, err := mediator.New(cfg)
	cancel()
	if err != nil {
		log.Fatal(err)
	}
	var srvOpts []wire.ServerOption
	if *jsonOnly {
		srvOpts = append(srvOpts, wire.WithJSONOnly())
	}
	handler := wire.NewMediatorServer(m, srvOpts...).Handler()
	var s *sched.Scheduler
	if *schedOn {
		pools, err := parsePools(*schedPools)
		if err != nil {
			log.Fatal(err)
		}
		s, err = sched.New(m, sched.Config{
			MaxConcurrent: *schedConc,
			DefaultPool:   sched.Pool{MaxQueued: *schedQueue},
			Pools:         pools,
			BatchWindow:   *schedWin,
		})
		if err != nil {
			log.Fatal(err)
		}
		handler = wire.NewQuerierServer(s, srvOpts...).Handler()
	}
	fmt.Printf("mediator for %s (%d nodes, %d³ grid, partial=%v, replicas=%d, sched=%v) on %s\n",
		m.Dataset(), len(clients), m.Grid().N, *partial, *repl, *schedOn, *addr)
	srv := &http.Server{Addr: *addr, Handler: handler}
	err = wire.RunDaemon(context.Background(), wire.DaemonConfig{
		Server: srv, DebugAddr: *dbgAddr, Drain: *drain,
	})
	if s != nil {
		s.Close()
	}
	if err != nil {
		log.Fatal(err)
	}
}
