// Command turbdb-mediator runs the front-end Web-server of the analysis
// cluster: it fans user queries out to the database nodes, assembles the
// distributed results, and serves the user-facing API (the role of the
// mediator in the paper's Fig. 1).
//
// Usage:
//
//	turbdb-mediator -addr :7080 \
//	    -nodes http://127.0.0.1:7070,http://127.0.0.1:7071
//
// -allow-partial answers from the surviving nodes when one stays
// unreachable after retries, annotating responses with the coverage of
// the Morton space actually scanned; the default is strict all-or-
// nothing. SIGINT/SIGTERM drain in-flight queries for -drain, then cancel
// them.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/turbdb/turbdb/internal/mediator"
	"github.com/turbdb/turbdb/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbdb-mediator: ")

	var (
		addr    = flag.String("addr", ":7080", "listen address")
		nodes   = flag.String("nodes", "", "comma-separated URLs of the node services (required)")
		partial = flag.Bool("allow-partial", false, "answer from surviving nodes when a node is unreachable (responses carry coverage)")
		connTO  = flag.Duration("connect-timeout", 30*time.Second, "deadline for contacting every node at startup")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		dbgAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (off by default)")
	)
	flag.Parse()
	if *nodes == "" {
		flag.Usage()
		os.Exit(2)
	}

	var clients []mediator.NodeClient
	for _, url := range strings.Split(*nodes, ",") {
		clients = append(clients, wire.NewClient(strings.TrimSpace(url)))
	}

	ctx, cancel := context.WithTimeout(context.Background(), *connTO)
	m, err := mediator.New(mediator.Config{
		Nodes: clients, AllowPartial: *partial, DescribeCtx: ctx,
	})
	cancel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mediator for %s (%d nodes, %d³ grid, partial=%v) on %s\n",
		m.Dataset(), len(clients), m.Grid().N, *partial, *addr)
	srv := &http.Server{Addr: *addr, Handler: wire.NewMediatorServer(m).Handler()}
	err = wire.RunDaemon(context.Background(), wire.DaemonConfig{
		Server: srv, DebugAddr: *dbgAddr, Drain: *drain,
	})
	if err != nil {
		log.Fatal(err)
	}
}
