// Command turbdb-mediator runs the front-end Web-server of the analysis
// cluster: it fans user queries out to the database nodes, assembles the
// distributed results, and serves the user-facing API (the role of the
// mediator in the paper's Fig. 1).
//
// Usage:
//
//	turbdb-mediator -addr :7080 \
//	    -nodes http://127.0.0.1:7070,http://127.0.0.1:7071
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"github.com/turbdb/turbdb/internal/mediator"
	"github.com/turbdb/turbdb/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbdb-mediator: ")

	var (
		addr  = flag.String("addr", ":7080", "listen address")
		nodes = flag.String("nodes", "", "comma-separated URLs of the node services (required)")
	)
	flag.Parse()
	if *nodes == "" {
		flag.Usage()
		os.Exit(2)
	}

	var clients []mediator.NodeClient
	for _, url := range strings.Split(*nodes, ",") {
		c := wire.NewClient(strings.TrimSpace(url))
		if _, err := c.Info(); err != nil {
			log.Fatalf("node %s unreachable: %v", url, err)
		}
		clients = append(clients, c)
	}

	m, err := mediator.New(mediator.Config{Nodes: clients})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mediator for %s (%d nodes, %d³ grid) on %s\n",
		m.Dataset(), len(clients), m.Grid().N, *addr)
	log.Fatal(http.ListenAndServe(*addr, wire.NewMediatorServer(m).Handler()))
}
