// Command turbdb-query is the CLI client of a turbdb mediator service:
// threshold queries, PDF histograms and top-k queries against a running
// deployment.
//
// Usage:
//
//	turbdb-query -mediator http://127.0.0.1:7080 threshold -field vorticity -value 20 -step 0
//	turbdb-query -mediator http://127.0.0.1:7080 pdf -field vorticity -bins 10 -width 5
//	turbdb-query -mediator http://127.0.0.1:7080 topk -field qcriterion -k 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	turbdb "github.com/turbdb/turbdb"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: turbdb-query -mediator URL <command> [flags]

commands:
  threshold  -field F -value V [-step N] [-order 2|4|6|8] [-limit N] [-trace] [-tenant T]
  pdf        -field F -bins N -width W [-min M] [-step N] [-tenant T]
  topk       -field F -k N [-step N] [-tenant T]
  info

-trace prints the query's distributed span tree (mediator stages plus
per-node scan, cache and halo timings) to stderr.

-tenant bills the query to that resource pool on a mediator running the
concurrent scheduler; over-quota queries fail with HTTP 429 — back off
and retry.

-proto frame negotiates the binary streaming response encoding (smaller,
faster to parse); services without it transparently answer JSON. Traced
queries always ride JSON.
`)
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbdb-query: ")

	mediatorURL := flag.String("mediator", "http://127.0.0.1:7080", "mediator service URL")
	proto := flag.String("proto", "json", `response encoding: "json" or "frame" (binary; falls back to JSON against older services)`)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}

	db, err := turbdb.OpenRemote(*mediatorURL, turbdb.WithProtocol(*proto))
	if err != nil {
		log.Fatal(err)
	}

	cmd := flag.Arg(0)
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	field := fs.String("field", "vorticity", "field name")
	step := fs.Int("step", 0, "time-step")
	order := fs.Int("order", 0, "finite-difference order (0 = default 4)")
	value := fs.Float64("value", 0, "threshold value")
	limit := fs.Int("limit", 0, "result point limit (0 = default 10⁶)")
	bins := fs.Int("bins", 10, "PDF bins")
	width := fs.Float64("width", 1, "PDF bin width")
	minv := fs.Float64("min", 0, "PDF first bin lower edge")
	k := fs.Int("k", 10, "top-k size")
	trace := fs.Bool("trace", false, "print the distributed span tree of the query to stderr")
	tenant := fs.String("tenant", "", "resource pool the query is billed to (scheduler deployments)")
	_ = fs.Parse(flag.Args()[1:]) //lint:allow droppederr ExitOnError flag set exits on bad input

	switch cmd {
	case "info":
		fmt.Printf("dataset %s, grid %d³\n", db.Dataset(), db.GridN())

	case "threshold":
		pts, stats, err := db.Threshold(turbdb.ThresholdQuery{
			Field: *field, Timestep: *step, Threshold: *value,
			FDOrder: *order, Limit: *limit, Trace: *trace, Tenant: *tenant,
		})
		if errors.Is(err, turbdb.ErrThresholdTooLow) {
			log.Fatalf("threshold too low: %v", err)
		}
		var overQuota *turbdb.ErrOverQuota
		if errors.As(err, &overQuota) {
			log.Fatalf("shed: %v — back off and retry", err)
		}
		if err != nil {
			log.Fatal(err)
		}
		if stats.TraceTree != "" {
			fmt.Fprint(os.Stderr, stats.TraceTree)
		}
		fmt.Printf("# %d points with ‖%s‖ ≥ %g at step %d (node time %v)\n",
			len(pts), *field, *value, *step, stats.Total)
		for _, p := range pts {
			fmt.Printf("%d %d %d %.6g\n", p.X, p.Y, p.Z, p.Value)
		}

	case "pdf":
		counts, err := db.PDF(turbdb.PDFQuery{
			Field: *field, Timestep: *step, Bins: *bins, Min: *minv, Width: *width,
			FDOrder: *order, Tenant: *tenant,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# PDF of ‖%s‖ at step %d\n", *field, *step)
		for i, c := range counts {
			lo := *minv + float64(i)*(*width)
			fmt.Printf("[%g,%g) %d\n", lo, lo+*width, c)
		}

	case "topk":
		pts, err := db.TopK(turbdb.TopKQuery{
			Field: *field, Timestep: *step, K: *k, FDOrder: *order,
			Tenant: *tenant,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# top %d of ‖%s‖ at step %d\n", len(pts), *field, *step)
		for _, p := range pts {
			fmt.Printf("%d %d %d %.6g\n", p.X, p.Y, p.Z, p.Value)
		}

	default:
		usage()
	}
}
