// Command turbdb-server runs one database node of an analysis cluster: it
// loads the node's shard from a turbdb-gen deployment directory and serves
// the node API (threshold / PDF / top-k evaluation, halo-atom fetches,
// cache control) over HTTP.
//
// Usage (node 0 of a 2-node deployment):
//
//	turbdb-server -data ./deploy -node 0 -addr :7070 \
//	    -peers http://127.0.0.1:7070,http://127.0.0.1:7071 -cache
//
// -peers lists ALL node URLs in node order (including this node, which is
// skipped); peers supply the halo band for derived-field kernels.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, in-
// flight queries get -drain to finish, then remaining connections are cut
// (their request contexts cancel, aborting the evaluations server-side).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/turbdb/turbdb/internal/cache"
	"github.com/turbdb/turbdb/internal/node"
	"github.com/turbdb/turbdb/internal/store"
	"github.com/turbdb/turbdb/internal/wire"
)

// serveDebug exposes the diagnostics endpoints (pprof, /metrics,
// /debug/trace) on their own listener (opt-in via -debug-addr; never on
// the query port). Best-effort: a failure to serve diagnostics must not
// take the node down.
func serveDebug(addr string) {
	go func() {
		log.Printf("diagnostics on http://%s/metrics and /debug/pprof/", addr)
		if err := http.ListenAndServe(addr, wire.DebugHandler()); err != nil {
			log.Printf("debug endpoint: %v", err)
		}
	}()
}

// serveGracefully runs srv until a termination signal, then drains for at
// most drain before force-closing connections.
func serveGracefully(srv *http.Server, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received, draining in-flight requests (up to %s)", drain)
	sdCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		log.Printf("drain deadline passed, canceling in-flight requests: %v", err)
		return srv.Close()
	}
	log.Printf("drained cleanly")
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbdb-server: ")

	var (
		data      = flag.String("data", "", "deployment directory written by turbdb-gen (required)")
		nodeID    = flag.Int("node", 0, "node index within the deployment")
		addr      = flag.String("addr", ":7070", "listen address")
		peers     = flag.String("peers", "", "comma-separated URLs of all node services, in node order")
		withCache = flag.Bool("cache", true, "enable the semantic query-result cache")
		cacheCap  = flag.Int64("cache-capacity", 0, "cache capacity in bytes (0 = unlimited)")
		processes = flag.Int("processes", 1, "worker processes per query")
		partial   = flag.Bool("allow-partial-halo", false, "skip atoms whose halo band is unreachable instead of failing the query")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (off by default)")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *debugAddr != "" {
		serveDebug(*debugAddr)
	}

	manifest, err := store.ReadManifest(*data)
	if err != nil {
		log.Fatal(err)
	}
	st, err := store.OpenShard(*data, manifest, *nodeID)
	if err != nil {
		log.Fatal(err)
	}

	var ca *cache.Cache
	if *withCache {
		ca, err = cache.New(cache.Config{CapacityBytes: *cacheCap})
		if err != nil {
			log.Fatal(err)
		}
	}

	var fetcher node.PeerFetcher
	if *peers != "" {
		var clients []*wire.Client
		for _, url := range strings.Split(*peers, ",") {
			clients = append(clients, wire.NewClient(strings.TrimSpace(url)))
		}
		fetcher = wire.NewPeerSet(clients, *nodeID)
	}

	n, err := node.New(node.Config{
		ID: *nodeID, Dataset: manifest.Dataset, Store: st, Cache: ca,
		Peers: fetcher, Processes: *processes,
		AllowPartialHalo: *partial,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("node %d serving %s shard %v on %s (cache=%v, %d processes)\n",
		*nodeID, manifest.Dataset, st.Owned(), *addr, *withCache, *processes)
	srv := &http.Server{Addr: *addr, Handler: wire.NewNodeServer(n).Handler()}
	if err := serveGracefully(srv, *drain); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
