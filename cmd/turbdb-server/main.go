// Command turbdb-server runs one database node of an analysis cluster: it
// loads the node's shard from a turbdb-gen deployment directory and serves
// the node API (threshold / PDF / top-k evaluation, halo-atom fetches,
// cache control) over HTTP.
//
// Usage (node 0 of a 2-node deployment):
//
//	turbdb-server -data ./deploy -node 0 -addr :7070 \
//	    -peers http://127.0.0.1:7070,http://127.0.0.1:7071 -cache
//
// -peers lists ALL node URLs in node order (including this node, which is
// skipped); peers supply the halo band for derived-field kernels.
//
// -replica-shards lists extra shard indexes this node holds as replicas
// (loaded from the same deployment directory), e.g. node 2 of a k=2 ring
// runs with -replica-shards 1. The node advertises the replica ranges via
// /info, so a replica-aware mediator can fail queries over to it when a
// primary dies.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, in-
// flight queries get -drain to finish, then remaining connections are cut
// (their request contexts cancel, aborting the evaluations server-side).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/turbdb/turbdb/internal/cache"
	"github.com/turbdb/turbdb/internal/morton"
	"github.com/turbdb/turbdb/internal/node"
	"github.com/turbdb/turbdb/internal/store"
	"github.com/turbdb/turbdb/internal/wire"
)

// loadReplicaShards adopts each listed shard's range into st and copies
// its atoms in from the deployment directory, so the node can serve the
// ranges when their primaries die.
func loadReplicaShards(st *store.Store, root string, m store.Manifest, self int, list string) error {
	for _, tok := range strings.Split(list, ",") {
		j, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return fmt.Errorf("bad -replica-shards entry %q: %w", tok, err)
		}
		if j < 0 || j >= len(m.Shards) {
			return fmt.Errorf("-replica-shards index %d out of range (deployment has %d shards)", j, len(m.Shards))
		}
		if j == self {
			continue // the primary shard is already open
		}
		r := morton.Range{Lo: morton.Code(m.Shards[j][0]), Hi: morton.Code(m.Shards[j][1])}
		st.AdoptRange(r)
		src, err := store.OpenShard(root, m, j)
		if err != nil {
			return fmt.Errorf("replica shard %d: %w", j, err)
		}
		codes := make([]morton.Code, 0, r.Hi-r.Lo)
		for c := r.Lo; c < r.Hi; c++ {
			codes = append(codes, c)
		}
		for _, fm := range m.Fields {
			for step := 0; step < m.Steps; step++ {
				blobs, err := src.ReadAtoms(nil, fm.Name, step, codes)
				if err != nil {
					return fmt.Errorf("replica shard %d: reading %q step %d: %w", j, fm.Name, step, err)
				}
				for code, b := range blobs {
					if err := st.Put(fm.Name, step, code, b); err != nil {
						return fmt.Errorf("replica shard %d: adopting atom %v: %w", j, code, err)
					}
				}
			}
		}
		log.Printf("holding shard %d %v as a replica", j, r)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbdb-server: ")

	var (
		data      = flag.String("data", "", "deployment directory written by turbdb-gen (required)")
		nodeID    = flag.Int("node", 0, "node index within the deployment")
		addr      = flag.String("addr", ":7070", "listen address")
		peers     = flag.String("peers", "", "comma-separated URLs of all node services, in node order")
		replicas  = flag.String("replica-shards", "", "comma-separated shard indexes to also hold as replicas")
		withCache = flag.Bool("cache", true, "enable the semantic query-result cache")
		cacheCap  = flag.Int64("cache-capacity", 0, "cache capacity in bytes (0 = unlimited)")
		processes = flag.Int("processes", 1, "worker processes per query")
		partial   = flag.Bool("allow-partial-halo", false, "skip atoms whose halo band is unreachable instead of failing the query")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (off by default)")
		jsonOnly  = flag.Bool("json-only", false, "answer every response as JSON, ignoring binary-frame negotiation (debug/compat)")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	manifest, err := store.ReadManifest(*data)
	if err != nil {
		log.Fatal(err)
	}
	st, err := store.OpenShard(*data, manifest, *nodeID)
	if err != nil {
		log.Fatal(err)
	}
	if *replicas != "" {
		if err := loadReplicaShards(st, *data, manifest, *nodeID, *replicas); err != nil {
			log.Fatal(err)
		}
	}

	var ca *cache.Cache
	if *withCache {
		ca, err = cache.New(cache.Config{CapacityBytes: *cacheCap})
		if err != nil {
			log.Fatal(err)
		}
	}

	var fetcher node.PeerFetcher
	if *peers != "" {
		var clients []*wire.Client
		for _, url := range strings.Split(*peers, ",") {
			clients = append(clients, wire.NewClient(strings.TrimSpace(url)))
		}
		fetcher = wire.NewPeerSet(clients, *nodeID)
	}

	n, err := node.New(node.Config{
		ID: *nodeID, Dataset: manifest.Dataset, Store: st, Cache: ca,
		Peers: fetcher, Processes: *processes,
		AllowPartialHalo: *partial,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("node %d serving %s shard %v on %s (cache=%v, %d processes)\n",
		*nodeID, manifest.Dataset, st.Owned(), *addr, *withCache, *processes)
	var srvOpts []wire.ServerOption
	if *jsonOnly {
		srvOpts = append(srvOpts, wire.WithJSONOnly())
	}
	srv := &http.Server{Addr: *addr, Handler: wire.NewNodeServer(n, srvOpts...).Handler()}
	err = wire.RunDaemon(context.Background(), wire.DaemonConfig{
		Server: srv, DebugAddr: *debugAddr, Drain: *drain,
	})
	if err != nil {
		log.Fatal(err)
	}
}
