// Command turbdb-server runs one database node of an analysis cluster: it
// loads the node's shard from a turbdb-gen deployment directory and serves
// the node API (threshold / PDF / top-k evaluation, halo-atom fetches,
// cache control) over HTTP.
//
// Usage (node 0 of a 2-node deployment):
//
//	turbdb-server -data ./deploy -node 0 -addr :7070 \
//	    -peers http://127.0.0.1:7070,http://127.0.0.1:7071 -cache
//
// -peers lists ALL node URLs in node order (including this node, which is
// skipped); peers supply the halo band for derived-field kernels.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, in-
// flight queries get -drain to finish, then remaining connections are cut
// (their request contexts cancel, aborting the evaluations server-side).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/turbdb/turbdb/internal/cache"
	"github.com/turbdb/turbdb/internal/node"
	"github.com/turbdb/turbdb/internal/store"
	"github.com/turbdb/turbdb/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbdb-server: ")

	var (
		data      = flag.String("data", "", "deployment directory written by turbdb-gen (required)")
		nodeID    = flag.Int("node", 0, "node index within the deployment")
		addr      = flag.String("addr", ":7070", "listen address")
		peers     = flag.String("peers", "", "comma-separated URLs of all node services, in node order")
		withCache = flag.Bool("cache", true, "enable the semantic query-result cache")
		cacheCap  = flag.Int64("cache-capacity", 0, "cache capacity in bytes (0 = unlimited)")
		processes = flag.Int("processes", 1, "worker processes per query")
		partial   = flag.Bool("allow-partial-halo", false, "skip atoms whose halo band is unreachable instead of failing the query")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (off by default)")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	manifest, err := store.ReadManifest(*data)
	if err != nil {
		log.Fatal(err)
	}
	st, err := store.OpenShard(*data, manifest, *nodeID)
	if err != nil {
		log.Fatal(err)
	}

	var ca *cache.Cache
	if *withCache {
		ca, err = cache.New(cache.Config{CapacityBytes: *cacheCap})
		if err != nil {
			log.Fatal(err)
		}
	}

	var fetcher node.PeerFetcher
	if *peers != "" {
		var clients []*wire.Client
		for _, url := range strings.Split(*peers, ",") {
			clients = append(clients, wire.NewClient(strings.TrimSpace(url)))
		}
		fetcher = wire.NewPeerSet(clients, *nodeID)
	}

	n, err := node.New(node.Config{
		ID: *nodeID, Dataset: manifest.Dataset, Store: st, Cache: ca,
		Peers: fetcher, Processes: *processes,
		AllowPartialHalo: *partial,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("node %d serving %s shard %v on %s (cache=%v, %d processes)\n",
		*nodeID, manifest.Dataset, st.Owned(), *addr, *withCache, *processes)
	srv := &http.Server{Addr: *addr, Handler: wire.NewNodeServer(n).Handler()}
	err = wire.RunDaemon(context.Background(), wire.DaemonConfig{
		Server: srv, DebugAddr: *debugAddr, Drain: *drain,
	})
	if err != nil {
		log.Fatal(err)
	}
}
