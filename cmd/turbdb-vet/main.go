// Command turbdb-vet runs the repository's custom static-analysis suite
// (internal/lint): lockcheck, droppederr, floateq and magicatom. It is part
// of the standard check gate (scripts/check.sh, CI) and exits non-zero when
// any finding is reported.
//
// Usage:
//
//	turbdb-vet [-checks lockcheck,droppederr] [-tests] [packages]
//
// Packages default to ./... relative to the enclosing module. Suppress a
// deliberate finding with a `//lint:allow <check> <reason>` comment on the
// flagged line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/turbdb/turbdb/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *checks != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "turbdb-vet: unknown check %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbdb-vet:", err)
		os.Exit(2)
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbdb-vet:", err)
		os.Exit(2)
	}

	exit := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "turbdb-vet: %s: type error: %v\n", pkg.ImportPath, terr)
			exit = 2
		}
		for _, d := range lint.Analyze(pkg, analyzers) {
			fmt.Println(d)
			if exit == 0 {
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
