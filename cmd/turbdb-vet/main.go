// Command turbdb-vet runs the repository's custom static-analysis suite
// (internal/lint): lockcheck, droppederr, floateq, magicatom, ctxpropagate,
// rowkernel, poolcheck, the concurrency-safety trio lockorder, goroutinelife
// and atomichygiene, and the protocol-readiness trio wirecompat, errclass
// and metrichygiene. It is part of the standard check gate
// (scripts/check.sh, CI) and exits non-zero when any finding is reported.
//
// Usage:
//
//	turbdb-vet [-checks lockcheck,droppederr] [-tests] [-json] [-timings] [-budget 300s] [packages]
//
// Packages default to ./... relative to the enclosing module. Suppress a
// deliberate finding with a `//lint:allow <check> <reason>` comment on the
// flagged line or the line above it, or with `//turbdb:ignore <check>
// <reason>` — the reason is mandatory there and is carried into the -json
// report, so every suppression stays auditable.
//
// With -json the machine-readable report (active findings, suppressed
// findings with their reasons, type errors, per-analyzer timings) goes to
// stdout and the human-readable findings to stderr, so
// `turbdb-vet -json ./... > report.json` works as a CI artifact step
// without losing the readable log.
//
// -timings prints a per-analyzer wall-clock table (CPU time summed across
// packages, slowest first) plus the end-to-end load and analysis times.
// -budget fails the run (exit 3) when end-to-end wall clock exceeds the
// given duration — the gate's latency is a contract, and a new analyzer
// that blows it should fail loudly in CI rather than slow every developer
// down quietly.
//
// Analysis note: type-checking is sequential (packages type-check in
// dependency order through one shared loader), but the analyzers themselves
// run over the loaded packages in parallel, so the gate does not slow down
// linearly as the suite grows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/turbdb/turbdb/internal/lint"
)

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
	// Reason is the mandatory justification of the //turbdb:ignore
	// directive, present only on suppressed findings.
	Reason string `json:"reason,omitempty"`
}

// jsonReport is the full -json output of one run.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed []jsonFinding `json:"suppressed"`
	TypeErrors []string      `json:"type_errors"`
	// TimingsMS is per-analyzer CPU time in milliseconds, summed across
	// packages (parallel passes overlap, so the sum can exceed ElapsedMS).
	TimingsMS map[string]float64 `json:"timings_ms,omitempty"`
	// LoadMS and ElapsedMS are end-to-end wall-clock milliseconds for the
	// load (parse + type-check) phase and the whole run.
	LoadMS    float64 `json:"load_ms"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// pkgResult is the analysis outcome of one package.
type pkgResult struct {
	importPath string
	typeErrors []error
	active     []lint.Diagnostic
	suppressed []lint.Diagnostic
	timings    map[string]time.Duration
}

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	list := flag.Bool("list", false, "list available checks and exit")
	jsonOut := flag.Bool("json", false, "write a machine-readable report to stdout (human log moves to stderr)")
	timings := flag.Bool("timings", false, "print a per-analyzer timing table to stderr")
	budget := flag.Duration("budget", 0, "fail (exit 3) when the whole run exceeds this wall-clock duration (0 = no budget)")
	flag.Parse()
	start := time.Now()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *checks != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "turbdb-vet: unknown check %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbdb-vet:", err)
		os.Exit(2)
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbdb-vet:", err)
		os.Exit(2)
	}
	loadTime := time.Since(start)

	results := analyzeParallel(pkgs, analyzers)

	humanOut := os.Stdout
	if *jsonOut {
		humanOut = os.Stderr
	}
	exit := 0
	report := jsonReport{
		Findings:   []jsonFinding{},
		Suppressed: []jsonFinding{},
		TypeErrors: []string{},
	}
	for _, res := range results {
		for _, terr := range res.typeErrors {
			fmt.Fprintf(os.Stderr, "turbdb-vet: %s: type error: %v\n", res.importPath, terr)
			report.TypeErrors = append(report.TypeErrors, fmt.Sprintf("%s: %v", res.importPath, terr))
			exit = 2
		}
		for _, d := range res.active {
			fmt.Fprintln(humanOut, d)
			report.Findings = append(report.Findings, toJSON(d))
			if exit == 0 {
				exit = 1
			}
		}
		for _, d := range res.suppressed {
			report.Suppressed = append(report.Suppressed, toJSON(d))
		}
	}

	elapsed := time.Since(start)
	perCheck := make(map[string]time.Duration)
	for _, res := range results {
		for name, d := range res.timings {
			perCheck[name] += d
		}
	}
	report.TimingsMS = make(map[string]float64, len(perCheck))
	for name, d := range perCheck {
		report.TimingsMS[name] = float64(d) / float64(time.Millisecond)
	}
	report.LoadMS = float64(loadTime) / float64(time.Millisecond)
	report.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	if *timings {
		names := make([]string, 0, len(perCheck))
		for name := range perCheck {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool { return perCheck[names[i]] > perCheck[names[j]] })
		fmt.Fprintf(os.Stderr, "turbdb-vet: load %v, total %v (%d packages)\n", loadTime.Round(time.Millisecond), elapsed.Round(time.Millisecond), len(pkgs))
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "  %-14s %8v\n", name, perCheck[name].Round(time.Millisecond))
		}
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "turbdb-vet: run took %v, over the %v budget\n", elapsed.Round(time.Millisecond), *budget)
		exit = 3
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "turbdb-vet:", err)
			os.Exit(2)
		}
	}
	os.Exit(exit)
}

// analyzeParallel fans the analyzer suite out over the loaded packages,
// preserving input order in the results. Loading already happened (and with
// it all cross-package dependency work); each analysis pass only reads its
// package plus the shared annotation registry, so passes are independent.
func analyzeParallel(pkgs []*lint.Package, analyzers []*lint.Analyzer) []pkgResult {
	results := make([]pkgResult, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *lint.Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			active, suppressed, timings := lint.AnalyzeAllTimed(pkg, analyzers)
			results[i] = pkgResult{
				importPath: pkg.ImportPath,
				typeErrors: pkg.TypeErrors,
				active:     active,
				suppressed: suppressed,
				timings:    timings,
			}
		}(i, pkg)
	}
	wg.Wait()
	return results
}

func toJSON(d lint.Diagnostic) jsonFinding {
	return jsonFinding{
		File:    d.Pos.Filename,
		Line:    d.Pos.Line,
		Column:  d.Pos.Column,
		Check:   d.Check,
		Message: d.Message,
		Reason:  d.SuppressReason,
	}
}
