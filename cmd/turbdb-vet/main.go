// Command turbdb-vet runs the repository's custom static-analysis suite
// (internal/lint): lockcheck, droppederr, floateq, magicatom, ctxpropagate,
// rowkernel, poolcheck, and the concurrency-safety trio lockorder,
// goroutinelife and atomichygiene. It is part of the standard check gate
// (scripts/check.sh, CI) and exits non-zero when any finding is reported.
//
// Usage:
//
//	turbdb-vet [-checks lockcheck,droppederr] [-tests] [-json] [packages]
//
// Packages default to ./... relative to the enclosing module. Suppress a
// deliberate finding with a `//lint:allow <check> <reason>` comment on the
// flagged line or the line above it, or with `//turbdb:ignore <check>
// <reason>` — the reason is mandatory there and is carried into the -json
// report, so every suppression stays auditable.
//
// With -json the machine-readable report (active findings, suppressed
// findings with their reasons, type errors) goes to stdout and the human-
// readable findings to stderr, so `turbdb-vet -json ./... > report.json`
// works as a CI artifact step without losing the readable log.
//
// Analysis note: type-checking is sequential (packages type-check in
// dependency order through one shared loader), but the analyzers themselves
// run over the loaded packages in parallel, so the gate does not slow down
// linearly as the suite grows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"github.com/turbdb/turbdb/internal/lint"
)

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
	// Reason is the mandatory justification of the //turbdb:ignore
	// directive, present only on suppressed findings.
	Reason string `json:"reason,omitempty"`
}

// jsonReport is the full -json output of one run.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed []jsonFinding `json:"suppressed"`
	TypeErrors []string      `json:"type_errors"`
}

// pkgResult is the analysis outcome of one package.
type pkgResult struct {
	importPath string
	typeErrors []error
	active     []lint.Diagnostic
	suppressed []lint.Diagnostic
}

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	list := flag.Bool("list", false, "list available checks and exit")
	jsonOut := flag.Bool("json", false, "write a machine-readable report to stdout (human log moves to stderr)")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *checks != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "turbdb-vet: unknown check %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbdb-vet:", err)
		os.Exit(2)
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbdb-vet:", err)
		os.Exit(2)
	}

	results := analyzeParallel(pkgs, analyzers)

	humanOut := os.Stdout
	if *jsonOut {
		humanOut = os.Stderr
	}
	exit := 0
	report := jsonReport{
		Findings:   []jsonFinding{},
		Suppressed: []jsonFinding{},
		TypeErrors: []string{},
	}
	for _, res := range results {
		for _, terr := range res.typeErrors {
			fmt.Fprintf(os.Stderr, "turbdb-vet: %s: type error: %v\n", res.importPath, terr)
			report.TypeErrors = append(report.TypeErrors, fmt.Sprintf("%s: %v", res.importPath, terr))
			exit = 2
		}
		for _, d := range res.active {
			fmt.Fprintln(humanOut, d)
			report.Findings = append(report.Findings, toJSON(d))
			if exit == 0 {
				exit = 1
			}
		}
		for _, d := range res.suppressed {
			report.Suppressed = append(report.Suppressed, toJSON(d))
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "turbdb-vet:", err)
			os.Exit(2)
		}
	}
	os.Exit(exit)
}

// analyzeParallel fans the analyzer suite out over the loaded packages,
// preserving input order in the results. Loading already happened (and with
// it all cross-package dependency work); each analysis pass only reads its
// package plus the shared annotation registry, so passes are independent.
func analyzeParallel(pkgs []*lint.Package, analyzers []*lint.Analyzer) []pkgResult {
	results := make([]pkgResult, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *lint.Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			active, suppressed := lint.AnalyzeAll(pkg, analyzers)
			results[i] = pkgResult{
				importPath: pkg.ImportPath,
				typeErrors: pkg.TypeErrors,
				active:     active,
				suppressed: suppressed,
			}
		}(i, pkg)
	}
	wg.Wait()
	return results
}

func toJSON(d lint.Diagnostic) jsonFinding {
	return jsonFinding{
		File:    d.Pos.Filename,
		Line:    d.Pos.Line,
		Column:  d.Pos.Column,
		Check:   d.Check,
		Message: d.Message,
		Reason:  d.SuppressReason,
	}
}
