package turbdb

import (
	"fmt"

	"github.com/turbdb/turbdb/internal/fof"
	"github.com/turbdb/turbdb/internal/grid"
	"github.com/turbdb/turbdb/internal/landmark"
)

// Landmark is one recorded region of interest: an intense event reduced to
// its statistics (the landmark database the paper's conclusion proposes).
type Landmark struct {
	ID        uint64
	Field     string
	Threshold float64
	// Peak is the most intense point, with the step and value.
	Peak      Point
	PeakStep  int
	Centroid  [3]float64
	BBox      Box
	Size      int
	FirstStep int
	LastStep  int
}

// Lifespan returns the number of time-steps the event is alive.
func (l Landmark) Lifespan() int { return l.LastStep - l.FirstStep + 1 }

// LandmarkOptions configures BuildLandmarks.
type LandmarkOptions struct {
	// Quantile sets the threshold at this quantile of the field's norm
	// (default 0.998 — the extreme tail).
	Quantile float64
	// LinkLength is the FoF spatial link in grid cells (default 2).
	LinkLength float64
	// TimeLink is the FoF temporal link in steps (default 1).
	TimeLink int
	// MinSize drops clusters smaller than this (default 1).
	MinSize int
}

// LandmarkFilter selects landmarks in LandmarkDB.Find; zero values mean
// "any", except Step where -1 means any.
type LandmarkFilter struct {
	MinPeak float64
	MinSize int
	Region  Box
	Step    int
}

// LandmarkDB holds recorded landmarks for one database, queryable without
// touching the raw data again.
type LandmarkDB struct {
	inner   *landmark.DB
	dataset string
}

// BuildLandmarks thresholds the field in every stored time-step, clusters
// the results in 4-D, and records one landmark per event. The underlying
// threshold queries go through the cache like any other query, so rebuilt
// landmark databases reuse prior scans.
func (db *DB) BuildLandmarks(fieldName string, o LandmarkOptions) (*LandmarkDB, error) {
	if o.Quantile == 0 {
		o.Quantile = 0.998
	}
	if o.LinkLength == 0 {
		o.LinkLength = 2
	}
	if o.TimeLink == 0 {
		o.TimeLink = 1
	}
	if o.MinSize == 0 {
		o.MinSize = 1
	}
	threshold, err := db.NormQuantile(fieldName, 0, o.Quantile)
	if err != nil {
		return nil, err
	}
	var pts []fof.Point
	for step := 0; step < db.Steps(); step++ {
		stepPts, _, err := db.Threshold(ThresholdQuery{
			Field: fieldName, Timestep: step, Threshold: threshold,
		})
		if err != nil {
			return nil, fmt.Errorf("turbdb: landmarks step %d: %w", step, err)
		}
		for _, p := range stepPts {
			pts = append(pts, fof.Point{X: p.X, Y: p.Y, Z: p.Z, T: step, Value: float32(p.Value)})
		}
	}
	ldb := &LandmarkDB{inner: landmark.New(), dataset: db.Dataset()}
	_, err = ldb.inner.BuildFromPoints(db.Dataset(), fieldName, threshold, pts, fof.Params{
		LinkLength: o.LinkLength, TimeLink: o.TimeLink, Periodic: db.GridN(),
	}, o.MinSize)
	if err != nil {
		return nil, err
	}
	return ldb, nil
}

// Count returns the number of recorded landmarks.
func (l *LandmarkDB) Count() int { return l.inner.Count() }

// Find returns landmarks matching the filter, most intense first.
func (l *LandmarkDB) Find(f LandmarkFilter) ([]Landmark, error) {
	inner, err := l.inner.Query(landmark.Filter{
		Dataset: l.dataset,
		MinPeak: f.MinPeak,
		MinSize: f.MinSize,
		Region:  f.Region.internal(),
		Step:    f.Step,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Landmark, len(inner))
	for i, m := range inner {
		out[i] = Landmark{
			ID: m.ID, Field: m.Field, Threshold: m.Threshold,
			Peak:     Point{X: m.Peak.X, Y: m.Peak.Y, Z: m.Peak.Z, Value: m.PeakValue},
			PeakStep: m.PeakStep,
			Centroid: m.Centroid,
			BBox:     boxFromInternal(m.BBox),
			Size:     m.Size, FirstStep: m.FirstStep, LastStep: m.LastStep,
		}
	}
	return out, nil
}

// boxFromInternal converts the internal box type.
func boxFromInternal(b grid.Box) Box {
	return Box{
		Lo: [3]int{b.Lo.X, b.Lo.Y, b.Lo.Z},
		Hi: [3]int{b.Hi.X, b.Hi.Y, b.Hi.Z},
	}
}
