// Benchmarks that regenerate the workload of every table and figure in the
// paper's evaluation (Sec. 5). Each benchmark drives the real threshold
// engine over the synthetic 64³ MHD dataset on the simulated 4-node
// cluster; wall-clock ns/op measures this host's execution of the engine,
// while the custom metric sim-ms/query reports the modeled cluster time
// that corresponds to the paper's published measurements (shapes, not
// absolute values, are comparable — see EXPERIMENTS.md).
//
// The full table/figure renderings are produced by cmd/turbdb-bench.
package turbdb_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/turbdb/turbdb/internal/cluster"
	"github.com/turbdb/turbdb/internal/derived"
	"github.com/turbdb/turbdb/internal/experiments"
	"github.com/turbdb/turbdb/internal/fof"
	"github.com/turbdb/turbdb/internal/query"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error

	benchClusters   = map[string]*cluster.Cluster{}
	benchLevels     = map[string][3]experiments.Level{}
	benchClustersMu sync.Mutex
)

// env builds the shared benchmark environment once.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(experiments.Setup{
			GridN: 64, Steps: 2, Nodes: 4, Processes: 4,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// clusterFor builds (and caches) a cluster configuration.
func clusterFor(b *testing.B, key string, opts experiments.ClusterOpts) *cluster.Cluster {
	b.Helper()
	e := env(b)
	benchClustersMu.Lock()
	defer benchClustersMu.Unlock()
	if c, ok := benchClusters[key]; ok {
		return c
	}
	c, err := e.Cluster(opts)
	if err != nil {
		b.Fatal(err)
	}
	benchClusters[key] = c
	return c
}

// levelsFor picks (and caches) the paper-fraction threshold levels.
func levelsFor(b *testing.B, c *cluster.Cluster, field string) [3]experiments.Level {
	b.Helper()
	benchClustersMu.Lock()
	defer benchClustersMu.Unlock()
	if lv, ok := benchLevels[field]; ok {
		return lv
	}
	lv, err := env(b).Levels(c, field, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchLevels[field] = lv
	return lv
}

// reportSim attaches the virtual cluster time as a benchmark metric.
func reportSim(b *testing.B, total time.Duration, n int) {
	b.ReportMetric(float64(total)/float64(n)/1e6, "sim-ms/query")
}

// levelIdx maps level names to indices.
var levelIdx = map[string]int{"high": 0, "medium": 1, "low": 2}

// BenchmarkFig6Table1_NoCache measures threshold queries evaluated from the
// raw data on a cacheless cluster (the blue bars of Fig. 6 / column 1 of
// Table 1), per threshold level.
func BenchmarkFig6Table1_NoCache(b *testing.B) {
	for name, idx := range levelIdx {
		b.Run(name, func(b *testing.B) {
			e := env(b)
			c := clusterFor(b, "nocache", experiments.ClusterOpts{})
			lv := levelsFor(b, c, derived.Vorticity)[idx]
			q := query.Threshold{Dataset: e.Dataset(), Field: derived.Vorticity, Threshold: lv.Threshold}
			var sim time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := experiments.RunThreshold(c, q)
				if err != nil {
					b.Fatal(err)
				}
				sim += stats.Total
			}
			reportSim(b, sim, b.N)
		})
	}
}

// BenchmarkFig6Table1_CacheMiss measures queries that interrogate the cache
// first but find their entry dropped (the red bars of Fig. 6).
func BenchmarkFig6Table1_CacheMiss(b *testing.B) {
	for name, idx := range levelIdx {
		b.Run(name, func(b *testing.B) {
			e := env(b)
			c := clusterFor(b, "cache", experiments.ClusterOpts{WithCache: true})
			lv := levelsFor(b, c, derived.Vorticity)[idx]
			q := query.Threshold{Dataset: e.Dataset(), Field: derived.Vorticity, Threshold: lv.Threshold}
			var sim time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := c.Mediator.DropCache(context.Background(), derived.Vorticity, 0, 0); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				_, stats, err := experiments.RunThreshold(c, q)
				if err != nil {
					b.Fatal(err)
				}
				sim += stats.Total
			}
			reportSim(b, sim, b.N)
		})
	}
}

// BenchmarkFig6Table1_CacheHit measures queries answered from the semantic
// cache (the green bars of Fig. 6 — over an order of magnitude faster).
func BenchmarkFig6Table1_CacheHit(b *testing.B) {
	for name, idx := range levelIdx {
		b.Run(name, func(b *testing.B) {
			e := env(b)
			c := clusterFor(b, "cache", experiments.ClusterOpts{WithCache: true})
			lv := levelsFor(b, c, derived.Vorticity)[idx]
			q := query.Threshold{Dataset: e.Dataset(), Field: derived.Vorticity, Threshold: lv.Threshold}
			// warm
			if _, _, err := experiments.RunThreshold(c, q); err != nil {
				b.Fatal(err)
			}
			var sim time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := experiments.RunThreshold(c, q)
				if err != nil {
					b.Fatal(err)
				}
				if stats.CacheHits != 4 {
					b.Fatalf("not a full hit: %d/4", stats.CacheHits)
				}
				sim += stats.Total
			}
			reportSim(b, sim, b.N)
		})
	}
}

// BenchmarkFig7a_ScaleUp measures the medium-threshold query at 1–8 worker
// processes per node (Fig. 7a).
func BenchmarkFig7a_ScaleUp(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			e := env(b)
			c := clusterFor(b, "nocache", experiments.ClusterOpts{})
			lv := levelsFor(b, c, derived.Vorticity)[1]
			if err := c.Mediator.SetProcesses(context.Background(), procs); err != nil {
				b.Fatal(err)
			}
			defer func() {
				_ = c.Mediator.SetProcesses(context.Background(), 4)
			}()
			q := query.Threshold{Dataset: e.Dataset(), Field: derived.Vorticity, Threshold: lv.Threshold}
			var sim time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := experiments.RunThreshold(c, q)
				if err != nil {
					b.Fatal(err)
				}
				sim += stats.Total
			}
			reportSim(b, sim, b.N)
		})
	}
}

// BenchmarkFig7b_ScaleOut measures the medium-threshold query on clusters
// of 1–8 nodes at one process per node (Fig. 7b).
func BenchmarkFig7b_ScaleOut(b *testing.B) {
	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes-%d", nodes), func(b *testing.B) {
			e := env(b)
			ref := clusterFor(b, "nocache", experiments.ClusterOpts{})
			lv := levelsFor(b, ref, derived.Vorticity)[1]
			c := clusterFor(b, fmt.Sprintf("scaleout-%d", nodes),
				experiments.ClusterOpts{Nodes: nodes, Processes: 1})
			q := query.Threshold{Dataset: e.Dataset(), Field: derived.Vorticity, Threshold: lv.Threshold}
			var sim time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := experiments.RunThreshold(c, q)
				if err != nil {
					b.Fatal(err)
				}
				sim += stats.Total
			}
			reportSim(b, sim, b.N)
		})
	}
}

// BenchmarkFig8_IOOnly reports the I/O phase alongside the total for the
// medium-threshold query (Fig. 8's two series) at 1 and 8 processes.
func BenchmarkFig8_IOOnly(b *testing.B) {
	for _, procs := range []int{1, 8} {
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			e := env(b)
			c := clusterFor(b, "nocache", experiments.ClusterOpts{})
			lv := levelsFor(b, c, derived.Vorticity)[1]
			if err := c.Mediator.SetProcesses(context.Background(), procs); err != nil {
				b.Fatal(err)
			}
			defer func() { _ = c.Mediator.SetProcesses(context.Background(), 4) }()
			q := query.Threshold{Dataset: e.Dataset(), Field: derived.Vorticity, Threshold: lv.Threshold}
			var sim, io time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := experiments.RunThreshold(c, q)
				if err != nil {
					b.Fatal(err)
				}
				sim += stats.Total
				io += stats.NodeCritical.IO
			}
			reportSim(b, sim, b.N)
			b.ReportMetric(float64(io)/float64(b.N)/1e6, "sim-io-ms/query")
		})
	}
}

// BenchmarkFig9_Breakdown measures the cold-cache query per field (Fig. 9
// a–c) at the medium level, reporting the phase metrics.
func BenchmarkFig9_Breakdown(b *testing.B) {
	for _, fieldName := range []string{derived.Vorticity, derived.QCriterion, derived.Magnetic} {
		b.Run(fieldName, func(b *testing.B) {
			e := env(b)
			c := clusterFor(b, "cache", experiments.ClusterOpts{WithCache: true})
			lv := levelsFor(b, c, fieldName)[1]
			q := query.Threshold{Dataset: e.Dataset(), Field: fieldName, Threshold: lv.Threshold}
			var sim, io, compute time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := c.Mediator.DropCache(context.Background(), fieldName, 0, 0); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				_, stats, err := experiments.RunThreshold(c, q)
				if err != nil {
					b.Fatal(err)
				}
				sim += stats.Total
				io += stats.NodeCritical.IO
				compute += stats.NodeCritical.Compute
			}
			reportSim(b, sim, b.N)
			b.ReportMetric(float64(io)/float64(b.N)/1e6, "sim-io-ms/query")
			b.ReportMetric(float64(compute)/float64(b.N)/1e6, "sim-compute-ms/query")
		})
	}
}

// BenchmarkFig2_VorticityPDF measures the PDF query that generates Fig. 2.
func BenchmarkFig2_VorticityPDF(b *testing.B) {
	e := env(b)
	c := clusterFor(b, "nocache", experiments.ClusterOpts{})
	q := query.PDF{Dataset: e.Dataset(), Field: derived.Vorticity, Bins: 10, Width: 5}
	var sim time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := experiments.RunPDF(c, q)
		if err != nil {
			b.Fatal(err)
		}
		sim += stats.Total
	}
	reportSim(b, sim, b.N)
}

// BenchmarkFig4_SevenRMS measures the 7×RMS vorticity threshold query of
// Fig. 4.
func BenchmarkFig4_SevenRMS(b *testing.B) {
	e := env(b)
	c := clusterFor(b, "nocache", experiments.ClusterOpts{})
	rms, err := e.NormRMS(c, derived.Vorticity, 0)
	if err != nil {
		b.Fatal(err)
	}
	q := query.Threshold{Dataset: e.Dataset(), Field: derived.Vorticity, Threshold: 7 * rms}
	var sim time.Duration
	var points int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, stats, err := experiments.RunThreshold(c, q)
		if err != nil {
			b.Fatal(err)
		}
		sim += stats.Total
		points = len(pts)
	}
	reportSim(b, sim, b.N)
	b.ReportMetric(float64(points), "points")
}

// BenchmarkFig3_FoFClustering measures 4-D friends-of-friends clustering of
// thresholded points across time-steps (the Fig. 3 analysis).
func BenchmarkFig3_FoFClustering(b *testing.B) {
	e := env(b)
	c := clusterFor(b, "nocache", experiments.ClusterOpts{})
	lv := levelsFor(b, c, derived.Vorticity)[2]
	var pts []fof.Point
	for step := 0; step < 2; step++ {
		stepPts, _, err := experiments.RunThreshold(c, query.Threshold{
			Dataset: e.Dataset(), Field: derived.Vorticity, Timestep: step, Threshold: lv.Threshold,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range stepPts {
			coords := p.Coords()
			pts = append(pts, fof.Point{X: coords.X, Y: coords.Y, Z: coords.Z, T: step, Value: p.Value})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fof.FindClusters(pts, fof.Params{LinkLength: 2, TimeLink: 1, Periodic: 64}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pts)), "points")
}

// BenchmarkSec53_LocalVsIntegrated measures the integrated cold evaluation
// and reports the modeled speedup over the local client-side workflow.
func BenchmarkSec53_LocalVsIntegrated(b *testing.B) {
	e := env(b)
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.LocalVsIntegrated(0)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Speedup
	}
	b.ReportMetric(speedup, "integrated-speedup-x")
}
