package turbdb

import (
	"context"
	"fmt"

	"github.com/turbdb/turbdb/internal/obs"
	"github.com/turbdb/turbdb/internal/query"
	"github.com/turbdb/turbdb/internal/wire"
)

// RemoteDB queries a running turbdb mediator service (cmd/turbdb-mediator)
// over HTTP — the Web-services access path of the paper's architecture.
type RemoteDB struct {
	client *wire.Client
	info   wire.InfoResponse
}

// RemoteOption customizes OpenRemote.
type RemoteOption func(*remoteConfig)

type remoteConfig struct {
	proto string
}

// WithProtocol selects the response encoding the client negotiates:
// "json" (the default, also the debug surface) or "frame" (the binary
// streaming frame protocol — smaller and faster to parse; a service that
// does not speak it transparently answers JSON).
func WithProtocol(name string) RemoteOption {
	return func(c *remoteConfig) { c.proto = name }
}

// OpenRemote connects to a mediator service at url (e.g.
// "http://localhost:7080") and fetches its dataset description.
func OpenRemote(url string, opts ...RemoteOption) (*RemoteDB, error) {
	var cfg remoteConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	proto, err := wire.ParseProto(cfg.proto)
	if err != nil {
		return nil, fmt.Errorf("turbdb: %w", err)
	}
	c := wire.NewClient(url, wire.WithProto(proto))
	info, err := c.Info(context.Background())
	if err != nil {
		return nil, fmt.Errorf("turbdb: connect %s: %w", url, err)
	}
	return &RemoteDB{client: c, info: info}, nil
}

// Dataset returns the remote dataset name.
func (r *RemoteDB) Dataset() string { return r.info.Dataset }

// GridN returns the remote grid side.
func (r *RemoteDB) GridN() int { return r.info.GridN }

// Threshold evaluates a threshold query remotely. Stats carry the node-side
// breakdown reported by the service, plus the coverage annotation when the
// mediator answered partially (see Config.AllowPartial).
func (r *RemoteDB) Threshold(q ThresholdQuery) ([]Point, Stats, error) {
	pts, resp, err := r.client.ThresholdStats(context.Background(), query.Threshold{
		Dataset: r.info.Dataset, Field: q.Field, Timestep: q.Timestep,
		Threshold: q.Threshold, Box: q.Region.internal(),
		FDOrder: q.FDOrder, Limit: q.Limit, Tenant: q.Tenant,
	}, q.Trace)
	if err != nil {
		return nil, Stats{}, err
	}
	cov := resp.Coverage
	if cov == 0 {
		cov = 1
	}
	var tree string
	if resp.Trace != nil {
		tree = obs.TraceFromSpans(resp.Trace.ID, wire.SpansFromDTO(resp.Trace.Spans)).Tree()
	}
	bd := resp.Breakdown.Breakdown()
	return fromResult(pts), Stats{
		Total:       bd.Total,
		CacheLookup: bd.CacheLookup,
		IO:          bd.IO,
		Compute:     bd.Compute,
		CacheUpdate: bd.CacheUpdate,
		Points:      len(pts),
		AtomsRead:   bd.AtomsRead,
		HaloAtoms:   bd.HaloAtoms,
		Coverage:    cov,
		NodesFailed: resp.Failed,
		TraceTree:   tree,
	}, nil
}

// PDF evaluates a histogram query remotely.
func (r *RemoteDB) PDF(q PDFQuery) ([]int64, error) {
	res, err := r.client.GetPDF(context.Background(), nil, query.PDF{
		Dataset: r.info.Dataset, Field: q.Field, Timestep: q.Timestep,
		Box: q.Region.internal(), Bins: q.Bins, Min: q.Min, Width: q.Width,
		FDOrder: q.FDOrder, Tenant: q.Tenant,
	})
	if err != nil {
		return nil, err
	}
	return res.Counts, nil
}

// TopK evaluates a top-k query remotely.
func (r *RemoteDB) TopK(q TopKQuery) ([]Point, error) {
	res, err := r.client.GetTopK(context.Background(), nil, query.TopK{
		Dataset: r.info.Dataset, Field: q.Field, Timestep: q.Timestep,
		Box: q.Region.internal(), K: q.K, FDOrder: q.FDOrder,
		Tenant: q.Tenant,
	})
	if err != nil {
		return nil, err
	}
	return fromResult(res.Points), nil
}
