package turbdb

import (
	"time"

	"github.com/turbdb/turbdb/internal/grid"
	"github.com/turbdb/turbdb/internal/query"
	"github.com/turbdb/turbdb/internal/sched"
	"github.com/turbdb/turbdb/internal/synth"
)

// Kind selects which simulation the synthetic dataset mimics.
type Kind int

// Dataset kinds.
const (
	// Isotropic mimics the forced isotropic turbulence dataset: stores
	// velocity and pressure.
	Isotropic Kind = iota
	// MHD mimics the magnetohydrodynamics dataset: stores velocity,
	// pressure and magnetic field.
	MHD
)

// String names the kind ("isotropic", "mhd") — also the dataset name used
// in queries and caches.
func (k Kind) String() string { return k.synth().String() }

func (k Kind) synth() synth.Kind {
	if k == MHD {
		return synth.MHD
	}
	return synth.Isotropic
}

// Standard queryable field names. Raw fields are stored; the rest are
// derived on demand. Additional fields can be registered on a DB before
// first use via RegisterField.
const (
	FieldVelocity   = "velocity"   // raw, 3 components
	FieldPressure   = "pressure"   // raw, scalar
	FieldMagnetic   = "magnetic"   // raw, 3 components (MHD only)
	FieldVorticity  = "vorticity"  // ∇×velocity
	FieldCurrent    = "current"    // ∇×magnetic (MHD only)
	FieldQCriterion = "qcriterion" // ½(‖Ω‖²−‖S‖²) of ∇velocity
	FieldRInvariant = "rinvariant" // −det(∇velocity)
	FieldGradNorm   = "gradnorm"   // ‖∇velocity‖_F
)

// Point is one result location: integer grid coordinates and the field's
// norm there.
type Point struct {
	X, Y, Z int
	Value   float64
}

// fromResult converts internal result points.
func fromResult(pts []query.ResultPoint) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		c := p.Coords()
		out[i] = Point{X: c.X, Y: c.Y, Z: c.Z, Value: float64(p.Value)}
	}
	return out
}

// Box is a half-open axis-aligned region of grid points: Lo ≤ p < Hi per
// axis. The zero Box means the whole domain.
type Box struct {
	Lo, Hi [3]int
}

// internal converts to the internal box type.
func (b Box) internal() grid.Box {
	return grid.Box{
		Lo: grid.Point{X: b.Lo[0], Y: b.Lo[1], Z: b.Lo[2]},
		Hi: grid.Point{X: b.Hi[0], Y: b.Hi[1], Z: b.Hi[2]},
	}
}

// ThresholdQuery asks for every grid location where the norm (or absolute
// value) of Field is at least Threshold.
type ThresholdQuery struct {
	// Field is a registered field name (see the Field… constants).
	Field string
	// Timestep selects the time-step, in [0, Config.Steps).
	Timestep int
	// Threshold is compared against the field's Euclidean norm.
	Threshold float64
	// Region restricts the query spatially; the zero Box means the whole
	// domain (the common case).
	Region Box
	// FDOrder is the centered finite-difference order (2, 4, 6 or 8);
	// 0 uses the default order 4.
	FDOrder int
	// Limit caps the result size; 0 uses the production limit of 10⁶
	// points. Queries over the limit fail with ErrThresholdTooLow.
	Limit int
	// Trace collects a per-stage span tree for this query (plan, per-node
	// scan, halo fetches, merge); the rendered tree comes back in
	// Stats.TraceTree. Off by default — untraced queries pay nothing.
	Trace bool
	// Tenant names the resource pool this query is billed to when the
	// service runs the concurrent scheduler; "" uses the default pool.
	// Over-quota queries fail with an error matching ErrOverQuota.
	Tenant string
}

// PDFQuery asks for the histogram of the field's norm.
type PDFQuery struct {
	Field    string
	Timestep int
	Region   Box
	// Bins buckets of Width starting at Min; the last bin is open-ended.
	Bins    int
	Min     float64
	Width   float64
	FDOrder int
	Tenant  string
}

// TopKQuery asks for the K locations with the largest field norms.
type TopKQuery struct {
	Field    string
	Timestep int
	Region   Box
	K        int
	FDOrder  int
	Tenant   string
}

// Stats reports the timing of one query. In simulation mode the durations
// are virtual cluster time; in real mode they are wall-clock.
type Stats struct {
	// Total is end-to-end: submission to results delivered.
	Total time.Duration
	// CacheLookup, IO, Compute and CacheUpdate are the slowest node's phase
	// times (the cluster critical path).
	CacheLookup time.Duration
	IO          time.Duration
	Compute     time.Duration
	CacheUpdate time.Duration
	// MediatorDBComm and MediatorUserComm are the communication phases
	// (zero in real in-process mode).
	MediatorDBComm   time.Duration
	MediatorUserComm time.Duration
	// Points is the result size.
	Points int
	// CacheHits counts nodes answering from their semantic cache; a query
	// is a full cache hit when CacheHits == Nodes.
	CacheHits int
	// Nodes is the cluster size.
	Nodes int
	// AtomsRead and HaloAtoms count storage records read (including
	// redundant halo re-reads) and peer-fetched halo atoms.
	AtomsRead int
	HaloAtoms int
	// Coverage is the fraction of the domain's Morton codes the answer
	// actually scanned: 1 for a complete answer, < 1 when Config.
	// AllowPartial let the mediator degrade around unreachable nodes.
	Coverage float64
	// NodesFailed counts nodes the mediator degraded around (0 for a
	// complete answer).
	NodesFailed int
	// TraceTree is the query's rendered span tree when ThresholdQuery.Trace
	// was set ("" otherwise). Recent traces are also browsable on a live
	// daemon via /debug/trace on the -debug-addr listener.
	TraceTree string
}

// Partial reports whether the answer is missing part of the domain
// because nodes were unreachable (see Config.AllowPartial).
func (s Stats) Partial() bool { return s.NodesFailed > 0 }

// FullCacheHit reports whether every node answered from its cache.
func (s Stats) FullCacheHit() bool { return s.Nodes > 0 && s.CacheHits == s.Nodes }

// ErrThresholdTooLow is returned when a threshold query would exceed its
// result-point limit; raise the threshold or examine the PDF instead.
var ErrThresholdTooLow = query.ErrThresholdTooLow

// ErrOverQuota is returned when the service's concurrent scheduler sheds a
// query because its tenant's queue quota is full (HTTP 429 on the wire).
// Match it with errors.As; backing off and retrying is the correct
// response.
type ErrOverQuota = sched.ErrOverQuota
